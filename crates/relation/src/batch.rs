//! Columnar batches and vectorized predicate kernels for the detail scan.
//!
//! The GMDJ hot loop is a single pass over the detail relation (paper
//! Section 2.2). The row-at-a-time representation pays enum dispatch, a
//! per-row key allocation, and `Arc<str>` rehashing on every probe. This
//! module decodes detail tuples into typed column vectors in fixed-size
//! chunks of [`BATCH_ROWS`] rows and evaluates comparison conjunctions as
//! typed kernels over those vectors.
//!
//! Correctness contract: a kernel may only run when the batch's column
//! types *guarantee* the row-at-a-time path could not error; anything it
//! cannot guarantee (mixed-type columns, non-conjunctive predicates,
//! incomparable operand types) reports "unsupported" and the caller falls
//! back to the exact row path. A computed mask is the WHERE-truncation of
//! Kleene 3VL: a bit is set iff every conjunct evaluates to `True`.

use std::cmp::Ordering;
use std::sync::Arc;

use crate::expr::{BoundPredicate, BoundScalar, CmpOp};
use crate::fxhash::hash_str;
use crate::relation::Tuple;
use crate::value::{Truth, Value};

/// Number of detail rows decoded per batch.
pub const BATCH_ROWS: usize = 1024;

/// Typed storage for one column of a batch. Slots that are NULL in the
/// source hold a placeholder (0 / 0.0 / "" / false) and are masked by
/// [`Column::nulls`].
#[derive(Debug, Clone)]
pub enum ColumnData {
    Int(Vec<i64>),
    Float(Vec<f64>),
    /// String values plus their precomputed Fx hash codes, so repeated
    /// probes of the same interned value never rehash its bytes.
    Str {
        values: Vec<Arc<str>>,
        hashes: Vec<u64>,
    },
    Bool(Vec<bool>),
    /// Mixed-typed column: kernels do not apply, rows fall back.
    Other(Vec<Value>),
}

/// One decoded column: typed data plus a null mask.
#[derive(Debug, Clone)]
pub struct Column {
    pub data: ColumnData,
    /// `nulls[i]` is true when row `i` is NULL in this column.
    pub nulls: Vec<bool>,
    pub has_nulls: bool,
}

impl Column {
    fn decode(rows: &[Tuple], col: usize) -> Column {
        #[derive(PartialEq, Clone, Copy)]
        enum Kind {
            Int,
            Float,
            Str,
            Bool,
        }
        let mut kind: Option<Kind> = None;
        let mut uniform = true;
        for r in rows {
            let k = match &r[col] {
                Value::Null => continue,
                Value::Int(_) => Kind::Int,
                Value::Float(_) => Kind::Float,
                Value::Str(_) => Kind::Str,
                Value::Bool(_) => Kind::Bool,
            };
            match kind {
                None => kind = Some(k),
                Some(prev) if prev == k => {}
                Some(_) => {
                    uniform = false;
                    break;
                }
            }
        }
        let mut nulls = Vec::with_capacity(rows.len());
        let mut has_nulls = false;
        for r in rows {
            let n = r[col].is_null();
            has_nulls |= n;
            nulls.push(n);
        }
        // NOTE: no Int→Float promotion — a mixed numeric column degrades to
        // Other so integer SUM/compare semantics never go through f64.
        let data = match (uniform, kind) {
            (true, Some(Kind::Int)) => ColumnData::Int(
                rows.iter()
                    .map(|r| match &r[col] {
                        Value::Int(i) => *i,
                        _ => 0,
                    })
                    .collect(),
            ),
            (true, Some(Kind::Float)) => ColumnData::Float(
                rows.iter()
                    .map(|r| match &r[col] {
                        Value::Float(f) => *f,
                        _ => 0.0,
                    })
                    .collect(),
            ),
            (true, Some(Kind::Str)) => {
                let empty: Arc<str> = Arc::from("");
                let mut values = Vec::with_capacity(rows.len());
                let mut hashes = Vec::with_capacity(rows.len());
                for r in rows {
                    match &r[col] {
                        Value::Str(s) => {
                            hashes.push(hash_str(s));
                            values.push(Arc::clone(s));
                        }
                        _ => {
                            hashes.push(0);
                            values.push(Arc::clone(&empty));
                        }
                    }
                }
                ColumnData::Str { values, hashes }
            }
            (true, Some(Kind::Bool)) => ColumnData::Bool(
                rows.iter()
                    .map(|r| match &r[col] {
                        Value::Bool(b) => *b,
                        _ => false,
                    })
                    .collect(),
            ),
            // All-NULL column: any typed representation works since every
            // slot is masked; Int placeholders keep the kernels applicable
            // (each comparison is Unknown, never an error).
            (true, None) => ColumnData::Int(vec![0; rows.len()]),
            (false, _) => ColumnData::Other(rows.iter().map(|r| r[col].clone()).collect()),
        };
        Column {
            data,
            nulls,
            has_nulls,
        }
    }

    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        self.nulls[i]
    }
}

/// A fixed-size window of detail rows decoded to typed columns.
#[derive(Debug, Clone)]
pub struct Batch {
    len: usize,
    pub cols: Vec<Column>,
}

impl Batch {
    /// Decode a window of tuples (typically ≤ [`BATCH_ROWS`]) column-wise.
    /// Column types are re-derived per batch: a column is `Int` only when
    /// every non-NULL value in *this* window is an `Int`, and so on.
    pub fn decode(rows: &[Tuple]) -> Batch {
        let ncols = if rows.is_empty() { 0 } else { rows[0].len() };
        Self::decode_cols(rows, &vec![true; ncols])
    }

    /// [`decode`](Self::decode) restricted to the columns marked in
    /// `needed`. Columns a scan's kernels never read stay as empty
    /// placeholders, so decode cost is proportional to the columns the
    /// plan actually touches, not the detail schema width. Reading a
    /// non-decoded column's `nulls` panics — marking bugs fail loudly
    /// rather than returning wrong answers.
    pub fn decode_cols(rows: &[Tuple], needed: &[bool]) -> Batch {
        let len = rows.len();
        let ncols = if len == 0 { 0 } else { rows[0].len() };
        let cols = (0..ncols)
            .map(|c| {
                if needed.get(c).copied().unwrap_or(true) {
                    Column::decode(rows, c)
                } else {
                    Column {
                        data: ColumnData::Other(Vec::new()),
                        nulls: Vec::new(),
                        has_nulls: false,
                    }
                }
            })
            .collect();
        Batch { len, cols }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Operand of a compiled comparison: a base-scope column (resolved to a
/// constant per probing base tuple), a detail-scope column (a batch
/// vector), or a literal.
#[derive(Debug, Clone)]
pub enum BatchOperand {
    Base(usize),
    Detail(usize),
    Lit(Value),
}

/// One compiled comparison `left op right`.
#[derive(Debug, Clone)]
pub struct BatchCmp {
    pub op: CmpOp,
    pub left: BatchOperand,
    pub right: BatchOperand,
}

/// A conjunction of comparisons compiled from a [`BoundPredicate`], ready
/// for masked evaluation over a [`Batch`].
#[derive(Debug, Clone)]
pub struct BatchPredicate {
    cmps: Vec<BatchCmp>,
}

impl BatchPredicate {
    /// Compile a bound predicate (scope 0 = base, scope 1 = detail) into a
    /// kernel-evaluable conjunction. Returns `None` for any shape the
    /// kernels don't cover (OR/NOT/IS NULL, computed operands): the caller
    /// keeps the exact row path for those.
    pub fn compile(p: &BoundPredicate) -> Option<BatchPredicate> {
        let mut cmps = Vec::new();
        if !collect_conjuncts(p, &mut cmps) {
            return None;
        }
        Some(BatchPredicate { cmps })
    }

    /// Mark every detail-scope column this predicate reads, so the caller
    /// can decode only those (see [`Batch::decode_cols`]).
    pub fn mark_detail_columns(&self, needed: &mut [bool]) {
        for cmp in &self.cmps {
            for op in [&cmp.left, &cmp.right] {
                if let BatchOperand::Detail(i) = op {
                    needed[*i] = true;
                }
            }
        }
    }

    /// True when no comparison reads a base-scope column, i.e. the mask for
    /// a batch can be computed once and shared across all probing base
    /// tuples.
    pub fn detail_only(&self) -> bool {
        self.cmps.iter().all(|c| {
            !matches!(c.left, BatchOperand::Base(_)) && !matches!(c.right, BatchOperand::Base(_))
        })
    }

    /// Evaluate the conjunction over `batch`, AND-ing each comparison into
    /// `mask` (`mask[i]` = all conjuncts `True` at row `i`). Returns `false`
    /// when the batch's column types (or the base row's value types) cannot
    /// guarantee error-free evaluation — the caller must then use the row
    /// path, which reproduces exact error behavior.
    pub fn eval_mask(
        &self,
        batch: &Batch,
        base_row: Option<&[Value]>,
        mask: &mut Vec<bool>,
    ) -> bool {
        mask.clear();
        mask.resize(batch.len(), true);
        for cmp in &self.cmps {
            let l = match resolve(&cmp.left, batch, base_row) {
                Some(o) => o,
                None => return false,
            };
            let r = match resolve(&cmp.right, batch, base_row) {
                Some(o) => o,
                None => return false,
            };
            let ok = match (l, r) {
                (Operand::Const(a), Operand::Const(b)) => cmp_const_const(cmp.op, a, b, mask),
                (Operand::Col(c), Operand::Const(v)) => cmp_col_const(cmp.op, c, v, mask),
                (Operand::Const(v), Operand::Col(c)) => cmp_col_const(cmp.op.flip(), c, v, mask),
                (Operand::Col(a), Operand::Col(b)) => cmp_col_col(cmp.op, a, b, mask),
            };
            if !ok {
                return false;
            }
        }
        true
    }
}

fn collect_conjuncts(p: &BoundPredicate, out: &mut Vec<BatchCmp>) -> bool {
    match p {
        BoundPredicate::And(a, b) => collect_conjuncts(a, out) && collect_conjuncts(b, out),
        BoundPredicate::Literal(Truth::True) => true,
        BoundPredicate::Cmp { op, left, right } => match (operand(left), operand(right)) {
            (Some(l), Some(r)) => {
                out.push(BatchCmp {
                    op: *op,
                    left: l,
                    right: r,
                });
                true
            }
            _ => false,
        },
        _ => false,
    }
}

fn operand(e: &BoundScalar) -> Option<BatchOperand> {
    match e {
        BoundScalar::Column { scope: 0, index } => Some(BatchOperand::Base(*index)),
        BoundScalar::Column { scope: 1, index } => Some(BatchOperand::Detail(*index)),
        BoundScalar::Literal(v) => Some(BatchOperand::Lit(v.clone())),
        _ => None,
    }
}

enum Operand<'a> {
    Col(&'a Column),
    Const(&'a Value),
}

fn resolve<'a>(
    op: &'a BatchOperand,
    batch: &'a Batch,
    base_row: Option<&'a [Value]>,
) -> Option<Operand<'a>> {
    match op {
        BatchOperand::Detail(i) => Some(Operand::Col(&batch.cols[*i])),
        BatchOperand::Base(i) => base_row.map(|b| Operand::Const(&b[*i])),
        BatchOperand::Lit(v) => Some(Operand::Const(v)),
    }
}

#[inline]
fn truth(op: CmpOp, ord: Ordering) -> bool {
    op.apply(Some(ord)).passes()
}

#[inline]
fn fill_false(mask: &mut [bool]) {
    mask.iter_mut().for_each(|m| *m = false);
}

fn cmp_const_const(op: CmpOp, a: &Value, b: &Value, mask: &mut [bool]) -> bool {
    match a.sql_cmp(b) {
        // The row path would raise TypeMismatch for every pair.
        Err(_) => false,
        Ok(None) => {
            fill_false(mask);
            true
        }
        Ok(Some(ord)) => {
            if !truth(op, ord) {
                fill_false(mask);
            }
            true
        }
    }
}

/// AND `col op c` into `mask` row-wise, mirroring `Value::sql_cmp` per
/// type pair: Int/Int via `i64` ordering, anything-Float via widened
/// `f64::total_cmp`, Str via byte-wise ordering, Bool via `bool` ordering.
fn cmp_col_const(op: CmpOp, col: &Column, c: &Value, mask: &mut [bool]) -> bool {
    if c.is_null() {
        // NULL comparand: every row is Unknown — no error regardless of
        // the column's type, so this is supported even for Other columns.
        fill_false(mask);
        return true;
    }
    let nulls = &col.nulls;
    match (&col.data, c) {
        (ColumnData::Int(vals), Value::Int(b)) => {
            for (i, m) in mask.iter_mut().enumerate() {
                if *m {
                    *m = !nulls[i] && truth(op, vals[i].cmp(b));
                }
            }
            true
        }
        (ColumnData::Int(vals), Value::Float(b)) => {
            for (i, m) in mask.iter_mut().enumerate() {
                if *m {
                    *m = !nulls[i] && truth(op, (vals[i] as f64).total_cmp(b));
                }
            }
            true
        }
        (ColumnData::Float(vals), Value::Int(b)) => {
            let b = *b as f64;
            for (i, m) in mask.iter_mut().enumerate() {
                if *m {
                    *m = !nulls[i] && truth(op, vals[i].total_cmp(&b));
                }
            }
            true
        }
        (ColumnData::Float(vals), Value::Float(b)) => {
            for (i, m) in mask.iter_mut().enumerate() {
                if *m {
                    *m = !nulls[i] && truth(op, vals[i].total_cmp(b));
                }
            }
            true
        }
        (ColumnData::Str { values, hashes }, Value::Str(b)) => {
            if op == CmpOp::Eq {
                // Equality precheck on the cached hash codes: a mismatch
                // rejects without touching the string bytes.
                let bh = hash_str(b);
                for (i, m) in mask.iter_mut().enumerate() {
                    if *m {
                        *m = !nulls[i] && hashes[i] == bh && values[i].as_ref() == b.as_ref();
                    }
                }
            } else {
                for (i, m) in mask.iter_mut().enumerate() {
                    if *m {
                        *m = !nulls[i] && truth(op, values[i].as_ref().cmp(b.as_ref()));
                    }
                }
            }
            true
        }
        (ColumnData::Bool(vals), Value::Bool(b)) => {
            for (i, m) in mask.iter_mut().enumerate() {
                if *m {
                    *m = !nulls[i] && truth(op, vals[i].cmp(b));
                }
            }
            true
        }
        // Mixed column or incomparable type pair: the row path may error
        // (TypeMismatch) on some rows — fall back for exactness.
        _ => false,
    }
}

fn cmp_col_col(op: CmpOp, l: &Column, r: &Column, mask: &mut [bool]) -> bool {
    let (ln, rn) = (&l.nulls, &r.nulls);
    match (&l.data, &r.data) {
        (ColumnData::Int(a), ColumnData::Int(b)) => {
            for (i, m) in mask.iter_mut().enumerate() {
                if *m {
                    *m = !ln[i] && !rn[i] && truth(op, a[i].cmp(&b[i]));
                }
            }
            true
        }
        (ColumnData::Int(a), ColumnData::Float(b)) => {
            for (i, m) in mask.iter_mut().enumerate() {
                if *m {
                    *m = !ln[i] && !rn[i] && truth(op, (a[i] as f64).total_cmp(&b[i]));
                }
            }
            true
        }
        (ColumnData::Float(a), ColumnData::Int(b)) => {
            for (i, m) in mask.iter_mut().enumerate() {
                if *m {
                    *m = !ln[i] && !rn[i] && truth(op, a[i].total_cmp(&(b[i] as f64)));
                }
            }
            true
        }
        (ColumnData::Float(a), ColumnData::Float(b)) => {
            for (i, m) in mask.iter_mut().enumerate() {
                if *m {
                    *m = !ln[i] && !rn[i] && truth(op, a[i].total_cmp(&b[i]));
                }
            }
            true
        }
        (
            ColumnData::Str {
                values: a,
                hashes: ah,
            },
            ColumnData::Str {
                values: b,
                hashes: bh,
            },
        ) => {
            if op == CmpOp::Eq {
                for (i, m) in mask.iter_mut().enumerate() {
                    if *m {
                        *m = !ln[i] && !rn[i] && ah[i] == bh[i] && a[i].as_ref() == b[i].as_ref();
                    }
                }
            } else {
                for (i, m) in mask.iter_mut().enumerate() {
                    if *m {
                        *m = !ln[i] && !rn[i] && truth(op, a[i].as_ref().cmp(b[i].as_ref()));
                    }
                }
            }
            true
        }
        (ColumnData::Bool(a), ColumnData::Bool(b)) => {
            for (i, m) in mask.iter_mut().enumerate() {
                if *m {
                    *m = !ln[i] && !rn[i] && truth(op, a[i].cmp(&b[i]));
                }
            }
            true
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn tuples(rows: &[Vec<Value>]) -> Vec<Tuple> {
        rows.iter().map(|r| r.clone().into_boxed_slice()).collect()
    }

    fn s(x: &str) -> Value {
        Value::Str(Arc::from(x))
    }

    #[test]
    fn decode_uniform_int_column_with_nulls() {
        let rows = tuples(&[vec![Value::Int(1)], vec![Value::Null], vec![Value::Int(3)]]);
        let b = Batch::decode(&rows);
        assert_eq!(b.len(), 3);
        match &b.cols[0].data {
            ColumnData::Int(v) => assert_eq!(v, &vec![1, 0, 3]),
            other => panic!("expected Int column, got {other:?}"),
        }
        assert_eq!(b.cols[0].nulls, vec![false, true, false]);
        assert!(b.cols[0].has_nulls);
    }

    #[test]
    fn decode_cols_skips_unneeded_columns() {
        let rows = tuples(&[
            vec![Value::Int(1), s("a"), Value::Float(0.5)],
            vec![Value::Int(2), s("b"), Value::Float(1.5)],
        ]);
        let b = Batch::decode_cols(&rows, &[true, false, true]);
        assert!(matches!(b.cols[0].data, ColumnData::Int(_)));
        assert!(matches!(b.cols[2].data, ColumnData::Float(_)));
        // The skipped column is an empty placeholder: kernels report it
        // unsupported, and any null-mask access panics.
        match &b.cols[1].data {
            ColumnData::Other(v) => assert!(v.is_empty()),
            other => panic!("expected placeholder Other column, got {other:?}"),
        }
        assert!(b.cols[1].nulls.is_empty());
    }

    #[test]
    fn mark_detail_columns_covers_both_operands() {
        use crate::expr::BoundPredicate as P;
        use crate::expr::BoundScalar as S;
        let pred = P::And(
            Box::new(P::Cmp {
                op: CmpOp::Lt,
                left: S::Column { scope: 1, index: 2 },
                right: S::Column { scope: 1, index: 0 },
            }),
            Box::new(P::Cmp {
                op: CmpOp::Eq,
                left: S::Column { scope: 0, index: 1 },
                right: S::Literal(Value::Int(3)),
            }),
        );
        let k = BatchPredicate::compile(&pred).unwrap();
        let mut needed = vec![false; 4];
        k.mark_detail_columns(&mut needed);
        assert_eq!(needed, vec![true, false, true, false]);
    }

    #[test]
    fn mixed_numeric_column_degrades_to_other() {
        let rows = tuples(&[vec![Value::Int(1)], vec![Value::Float(2.0)]]);
        let b = Batch::decode(&rows);
        assert!(matches!(b.cols[0].data, ColumnData::Other(_)));
    }

    #[test]
    fn str_hashes_match_fxhash() {
        let rows = tuples(&[vec![s("abc")], vec![Value::Null], vec![s("xy")]]);
        let b = Batch::decode(&rows);
        match &b.cols[0].data {
            ColumnData::Str { values, hashes } => {
                assert_eq!(hashes[0], hash_str("abc"));
                assert_eq!(hashes[2], hash_str("xy"));
                assert_eq!(values[0].as_ref(), "abc");
            }
            other => panic!("expected Str column, got {other:?}"),
        }
    }

    /// Compiled-mask evaluation must agree with the row path's
    /// WHERE-truncation on every supported type combination.
    #[test]
    fn mask_matches_row_eval() {
        use crate::expr::BoundPredicate as P;
        use crate::expr::BoundScalar as S;
        let pred = P::And(
            Box::new(P::Cmp {
                op: CmpOp::Ge,
                left: S::Column { scope: 1, index: 0 },
                right: S::Literal(Value::Int(2)),
            }),
            Box::new(P::Cmp {
                op: CmpOp::Eq,
                left: S::Column { scope: 0, index: 0 },
                right: S::Column { scope: 1, index: 1 },
            }),
        );
        let k = BatchPredicate::compile(&pred).expect("conjunction compiles");
        assert!(!k.detail_only());
        let base: Vec<Value> = vec![s("a")];
        let rows = tuples(&[
            vec![Value::Int(1), s("a")],
            vec![Value::Int(2), s("a")],
            vec![Value::Null, s("a")],
            vec![Value::Int(5), s("b")],
        ]);
        let batch = Batch::decode(&rows);
        let mut mask = Vec::new();
        assert!(k.eval_mask(&batch, Some(&base), &mut mask));
        let expect: Vec<bool> = rows
            .iter()
            .map(|r| {
                let scopes: [&[Value]; 2] = [&base, r];
                pred.eval(&scopes).unwrap().passes()
            })
            .collect();
        assert_eq!(mask, expect);
    }

    #[test]
    fn incomparable_types_are_unsupported() {
        use crate::expr::BoundPredicate as P;
        use crate::expr::BoundScalar as S;
        let pred = P::Cmp {
            op: CmpOp::Eq,
            left: S::Column { scope: 1, index: 0 },
            right: S::Literal(s("nope")),
        };
        let k = BatchPredicate::compile(&pred).unwrap();
        let rows = tuples(&[vec![Value::Int(1)]]);
        let batch = Batch::decode(&rows);
        let mut mask = Vec::new();
        assert!(!k.eval_mask(&batch, None, &mut mask));
    }

    #[test]
    fn null_literal_comparand_is_all_unknown_even_for_mixed_columns() {
        use crate::expr::BoundPredicate as P;
        use crate::expr::BoundScalar as S;
        let pred = P::Cmp {
            op: CmpOp::Eq,
            left: S::Column { scope: 1, index: 0 },
            right: S::Literal(Value::Null),
        };
        let k = BatchPredicate::compile(&pred).unwrap();
        let rows = tuples(&[vec![Value::Int(1)], vec![s("x")]]);
        let batch = Batch::decode(&rows);
        let mut mask = Vec::new();
        assert!(k.eval_mask(&batch, None, &mut mask));
        assert_eq!(mask, vec![false, false]);
    }

    #[test]
    fn or_and_is_null_do_not_compile() {
        use crate::expr::BoundPredicate as P;
        use crate::expr::BoundScalar as S;
        let cmp = P::Cmp {
            op: CmpOp::Eq,
            left: S::Column { scope: 1, index: 0 },
            right: S::Literal(Value::Int(1)),
        };
        assert!(
            BatchPredicate::compile(&P::Or(Box::new(cmp.clone()), Box::new(cmp.clone()))).is_none()
        );
        assert!(BatchPredicate::compile(&P::IsNull(S::Column { scope: 1, index: 0 })).is_none());
        assert!(BatchPredicate::compile(&cmp).is_some());
    }
}
