//! Vectorized predicate kernels over borrowed column slices.
//!
//! The GMDJ hot loop is a single pass over the detail relation (paper
//! Section 2.2). Since relations are stored natively columnar
//! ([`crate::columnar`]), the scan no longer decodes tuples per query: a
//! [`BatchView`] *borrows* a [`BATCH_ROWS`]-sized window of the stored
//! column vectors, and the comparison kernels run directly over those
//! slices. String columns arrive dictionary encoded — an equality kernel
//! compares one cached hash per row and only then the dictionary bytes.
//!
//! Correctness contract: a kernel may only run when the stored column
//! types *guarantee* the row-at-a-time path could not error; anything it
//! cannot guarantee (mixed-type columns, non-conjunctive predicates,
//! incomparable operand types) reports "unsupported" and the caller falls
//! back to the exact row path. A computed mask is the WHERE-truncation of
//! Kleene 3VL: a bit is set iff every conjunct evaluates to `True`.
//! Because column typing is now relation-global rather than re-derived per
//! window, kernel applicability is identical for every window of the same
//! relation.

use std::cmp::Ordering;
use std::sync::Arc;

use crate::columnar::{ColumnSet, ColumnStore, COLUMN_CHUNK_ROWS};
use crate::expr::{BoundPredicate, BoundScalar, CmpOp};
use crate::fxhash::hash_str;
use crate::value::{Truth, Value};

/// Number of detail rows per kernel window. Equal to the column-chunk page
/// size so one batch touches exactly one page per referenced column.
pub const BATCH_ROWS: usize = COLUMN_CHUNK_ROWS;

/// Borrowed typed data of one column window. For `Str`, `codes` is the
/// window slice while `dict` / `dict_hashes` are the full per-column
/// dictionary, indexed by code.
#[derive(Debug, Clone, Copy)]
pub enum ColData<'a> {
    Int(&'a [i64]),
    Float(&'a [f64]),
    Str {
        codes: &'a [u32],
        dict: &'a [Arc<str>],
        dict_hashes: &'a [u64],
    },
    Bool(&'a [bool]),
    /// Mixed-typed column: kernels do not apply, rows fall back.
    Other(&'a [Value]),
}

/// One borrowed column window: typed data plus the matching null-mask
/// slice.
#[derive(Debug, Clone, Copy)]
pub struct ColView<'a> {
    pub data: ColData<'a>,
    /// `nulls[i]` is true when row `i` of the window is NULL.
    pub nulls: &'a [bool],
    pub has_nulls: bool,
}

impl<'a> ColView<'a> {
    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        self.nulls[i]
    }
}

/// A window of detail rows viewed column-wise, borrowed from storage.
#[derive(Debug, Clone, Copy)]
pub struct BatchView<'a> {
    cols: &'a ColumnSet,
    start: usize,
    len: usize,
}

impl<'a> BatchView<'a> {
    /// Borrow rows `start .. start + len` of `cols`.
    pub fn new(cols: &'a ColumnSet, start: usize, len: usize) -> BatchView<'a> {
        debug_assert!(start + len <= cols.len());
        BatchView { cols, start, len }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Borrow one column's window.
    pub fn col(&self, i: usize) -> ColView<'a> {
        let sc = self.cols.col(i);
        let r = self.start..self.start + self.len;
        let data = match &sc.data {
            ColumnStore::Int(v) => ColData::Int(&v[r.clone()]),
            ColumnStore::Float(v) => ColData::Float(&v[r.clone()]),
            ColumnStore::Bool(v) => ColData::Bool(&v[r.clone()]),
            ColumnStore::Str {
                codes,
                dict,
                dict_hashes,
            } => ColData::Str {
                codes: &codes[r.clone()],
                dict,
                dict_hashes,
            },
            ColumnStore::Other(v) => ColData::Other(&v[r.clone()]),
        };
        ColView {
            data,
            nulls: &sc.nulls[r],
            has_nulls: sc.has_nulls,
        }
    }
}

/// Operand of a compiled comparison: a base-scope column (resolved to a
/// constant per probing base tuple), a detail-scope column (a stored
/// column window), or a literal.
#[derive(Debug, Clone)]
pub enum BatchOperand {
    Base(usize),
    Detail(usize),
    Lit(Value),
}

/// One compiled comparison `left op right`.
#[derive(Debug, Clone)]
pub struct BatchCmp {
    pub op: CmpOp,
    pub left: BatchOperand,
    pub right: BatchOperand,
}

/// A conjunction of comparisons compiled from a [`BoundPredicate`], ready
/// for masked evaluation over a [`BatchView`].
#[derive(Debug, Clone)]
pub struct BatchPredicate {
    cmps: Vec<BatchCmp>,
}

impl BatchPredicate {
    /// Compile a bound predicate (scope 0 = base, scope 1 = detail) into a
    /// kernel-evaluable conjunction. Returns `None` for any shape the
    /// kernels don't cover (OR/NOT/IS NULL, computed operands): the caller
    /// keeps the exact row path for those.
    pub fn compile(p: &BoundPredicate) -> Option<BatchPredicate> {
        let mut cmps = Vec::new();
        if !collect_conjuncts(p, &mut cmps) {
            return None;
        }
        Some(BatchPredicate { cmps })
    }

    /// True when no comparison reads a base-scope column, i.e. the mask for
    /// a window can be computed once and shared across all probing base
    /// tuples.
    pub fn detail_only(&self) -> bool {
        self.cmps.iter().all(|c| {
            !matches!(c.left, BatchOperand::Base(_)) && !matches!(c.right, BatchOperand::Base(_))
        })
    }

    /// Evaluate the conjunction over `view`, AND-ing each comparison into
    /// `mask` (`mask[i]` = all conjuncts `True` at row `i`). Returns `false`
    /// when the stored column types (or the base row's value types) cannot
    /// guarantee error-free evaluation — the caller must then use the row
    /// path, which reproduces exact error behavior.
    pub fn eval_mask(
        &self,
        view: &BatchView<'_>,
        base_row: Option<&[Value]>,
        mask: &mut Vec<bool>,
    ) -> bool {
        mask.clear();
        mask.resize(view.len(), true);
        for cmp in &self.cmps {
            let l = match resolve(&cmp.left, view, base_row) {
                Some(o) => o,
                None => return false,
            };
            let r = match resolve(&cmp.right, view, base_row) {
                Some(o) => o,
                None => return false,
            };
            let ok = match (l, r) {
                (Operand::Const(a), Operand::Const(b)) => cmp_const_const(cmp.op, a, b, mask),
                (Operand::Col(c), Operand::Const(v)) => cmp_col_const(cmp.op, &c, v, mask),
                (Operand::Const(v), Operand::Col(c)) => cmp_col_const(cmp.op.flip(), &c, v, mask),
                (Operand::Col(a), Operand::Col(b)) => cmp_col_col(cmp.op, &a, &b, mask),
            };
            if !ok {
                return false;
            }
        }
        true
    }
}

fn collect_conjuncts(p: &BoundPredicate, out: &mut Vec<BatchCmp>) -> bool {
    match p {
        BoundPredicate::And(a, b) => collect_conjuncts(a, out) && collect_conjuncts(b, out),
        BoundPredicate::Literal(Truth::True) => true,
        BoundPredicate::Cmp { op, left, right } => match (operand(left), operand(right)) {
            (Some(l), Some(r)) => {
                out.push(BatchCmp {
                    op: *op,
                    left: l,
                    right: r,
                });
                true
            }
            _ => false,
        },
        _ => false,
    }
}

fn operand(e: &BoundScalar) -> Option<BatchOperand> {
    match e {
        BoundScalar::Column { scope: 0, index } => Some(BatchOperand::Base(*index)),
        BoundScalar::Column { scope: 1, index } => Some(BatchOperand::Detail(*index)),
        BoundScalar::Literal(v) => Some(BatchOperand::Lit(v.clone())),
        _ => None,
    }
}

enum Operand<'a> {
    Col(ColView<'a>),
    Const(&'a Value),
}

fn resolve<'a>(
    op: &'a BatchOperand,
    view: &BatchView<'a>,
    base_row: Option<&'a [Value]>,
) -> Option<Operand<'a>> {
    match op {
        BatchOperand::Detail(i) => Some(Operand::Col(view.col(*i))),
        BatchOperand::Base(i) => base_row.map(|b| Operand::Const(&b[*i])),
        BatchOperand::Lit(v) => Some(Operand::Const(v)),
    }
}

#[inline]
fn truth(op: CmpOp, ord: Ordering) -> bool {
    op.apply(Some(ord)).passes()
}

#[inline]
fn fill_false(mask: &mut [bool]) {
    mask.iter_mut().for_each(|m| *m = false);
}

fn cmp_const_const(op: CmpOp, a: &Value, b: &Value, mask: &mut [bool]) -> bool {
    match a.sql_cmp(b) {
        // The row path would raise TypeMismatch for every pair.
        Err(_) => false,
        Ok(None) => {
            fill_false(mask);
            true
        }
        Ok(Some(ord)) => {
            if !truth(op, ord) {
                fill_false(mask);
            }
            true
        }
    }
}

/// AND `col op c` into `mask` row-wise, mirroring `Value::sql_cmp` per
/// type pair: Int/Int via `i64` ordering, anything-Float via widened
/// `f64::total_cmp`, Str via byte-wise ordering on the dictionary entry
/// (equality prechecks the cached dictionary hash), Bool via `bool`
/// ordering.
fn cmp_col_const(op: CmpOp, col: &ColView<'_>, c: &Value, mask: &mut [bool]) -> bool {
    if c.is_null() {
        // NULL comparand: every row is Unknown — no error regardless of
        // the column's type, so this is supported even for Other columns.
        fill_false(mask);
        return true;
    }
    let nulls = col.nulls;
    match (&col.data, c) {
        (ColData::Int(vals), Value::Int(b)) => {
            for (i, m) in mask.iter_mut().enumerate() {
                if *m {
                    *m = !nulls[i] && truth(op, vals[i].cmp(b));
                }
            }
            true
        }
        (ColData::Int(vals), Value::Float(b)) => {
            for (i, m) in mask.iter_mut().enumerate() {
                if *m {
                    *m = !nulls[i] && truth(op, (vals[i] as f64).total_cmp(b));
                }
            }
            true
        }
        (ColData::Float(vals), Value::Int(b)) => {
            let b = *b as f64;
            for (i, m) in mask.iter_mut().enumerate() {
                if *m {
                    *m = !nulls[i] && truth(op, vals[i].total_cmp(&b));
                }
            }
            true
        }
        (ColData::Float(vals), Value::Float(b)) => {
            for (i, m) in mask.iter_mut().enumerate() {
                if *m {
                    *m = !nulls[i] && truth(op, vals[i].total_cmp(b));
                }
            }
            true
        }
        (
            ColData::Str {
                codes,
                dict,
                dict_hashes,
            },
            Value::Str(b),
        ) => {
            if op == CmpOp::Eq {
                // Hash the comparand once; each row rejects on one cached
                // dictionary hash before ever touching string bytes.
                let bh = hash_str(b);
                for (i, m) in mask.iter_mut().enumerate() {
                    if *m {
                        let d = codes[i] as usize;
                        *m = !nulls[i] && dict_hashes[d] == bh && dict[d].as_ref() == b.as_ref();
                    }
                }
            } else {
                for (i, m) in mask.iter_mut().enumerate() {
                    if *m {
                        *m = !nulls[i]
                            && truth(op, dict[codes[i] as usize].as_ref().cmp(b.as_ref()));
                    }
                }
            }
            true
        }
        (ColData::Bool(vals), Value::Bool(b)) => {
            for (i, m) in mask.iter_mut().enumerate() {
                if *m {
                    *m = !nulls[i] && truth(op, vals[i].cmp(b));
                }
            }
            true
        }
        // Mixed column or incomparable type pair: the row path may error
        // (TypeMismatch) on some rows — fall back for exactness.
        _ => false,
    }
}

fn cmp_col_col(op: CmpOp, l: &ColView<'_>, r: &ColView<'_>, mask: &mut [bool]) -> bool {
    let (ln, rn) = (l.nulls, r.nulls);
    match (&l.data, &r.data) {
        (ColData::Int(a), ColData::Int(b)) => {
            for (i, m) in mask.iter_mut().enumerate() {
                if *m {
                    *m = !ln[i] && !rn[i] && truth(op, a[i].cmp(&b[i]));
                }
            }
            true
        }
        (ColData::Int(a), ColData::Float(b)) => {
            for (i, m) in mask.iter_mut().enumerate() {
                if *m {
                    *m = !ln[i] && !rn[i] && truth(op, (a[i] as f64).total_cmp(&b[i]));
                }
            }
            true
        }
        (ColData::Float(a), ColData::Int(b)) => {
            for (i, m) in mask.iter_mut().enumerate() {
                if *m {
                    *m = !ln[i] && !rn[i] && truth(op, a[i].total_cmp(&(b[i] as f64)));
                }
            }
            true
        }
        (ColData::Float(a), ColData::Float(b)) => {
            for (i, m) in mask.iter_mut().enumerate() {
                if *m {
                    *m = !ln[i] && !rn[i] && truth(op, a[i].total_cmp(&b[i]));
                }
            }
            true
        }
        (
            ColData::Str {
                codes: ac,
                dict: ad,
                dict_hashes: ah,
            },
            ColData::Str {
                codes: bc,
                dict: bd,
                dict_hashes: bh,
            },
        ) => {
            // Codes from different columns index different dictionaries and
            // are never directly comparable; equality prechecks the two
            // cached dictionary hashes instead.
            if op == CmpOp::Eq {
                for (i, m) in mask.iter_mut().enumerate() {
                    if *m {
                        let (da, db) = (ac[i] as usize, bc[i] as usize);
                        *m = !ln[i]
                            && !rn[i]
                            && ah[da] == bh[db]
                            && ad[da].as_ref() == bd[db].as_ref();
                    }
                }
            } else {
                for (i, m) in mask.iter_mut().enumerate() {
                    if *m {
                        let (da, db) = (ac[i] as usize, bc[i] as usize);
                        *m = !ln[i] && !rn[i] && truth(op, ad[da].as_ref().cmp(bd[db].as_ref()));
                    }
                }
            }
            true
        }
        (ColData::Bool(a), ColData::Bool(b)) => {
            for (i, m) in mask.iter_mut().enumerate() {
                if *m {
                    *m = !ln[i] && !rn[i] && truth(op, a[i].cmp(&b[i]));
                }
            }
            true
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::Tuple;
    use crate::value::Value;

    fn tuples(rows: &[Vec<Value>]) -> Vec<Tuple> {
        rows.iter().map(|r| r.clone().into_boxed_slice()).collect()
    }

    fn s(x: &str) -> Value {
        Value::Str(Arc::from(x))
    }

    fn encode(rows: &[Vec<Value>]) -> ColumnSet {
        let ts = tuples(rows);
        let width = ts.first().map_or(0, |t| t.len());
        ColumnSet::encode(&ts, width)
    }

    #[test]
    fn view_windows_share_relation_global_typing() {
        let cs = encode(&[
            vec![Value::Int(1), s("a")],
            vec![Value::Null, s("b")],
            vec![Value::Int(3), s("a")],
        ]);
        let v = BatchView::new(&cs, 1, 2);
        assert_eq!(v.len(), 2);
        match v.col(0).data {
            ColData::Int(vals) => assert_eq!(vals, &[0, 3]),
            other => panic!("expected Int window, got {other:?}"),
        }
        assert_eq!(v.col(0).nulls, &[true, false]);
        match v.col(1).data {
            ColData::Str { codes, dict, .. } => {
                assert_eq!(codes, &[1, 0]);
                assert_eq!(dict.len(), 2);
            }
            other => panic!("expected Str window, got {other:?}"),
        }
    }

    #[test]
    fn str_equality_uses_dictionary_hashes() {
        use crate::expr::BoundPredicate as P;
        use crate::expr::BoundScalar as S;
        let pred = P::Cmp {
            op: CmpOp::Eq,
            left: S::Column { scope: 1, index: 0 },
            right: S::Literal(s("GET")),
        };
        let k = BatchPredicate::compile(&pred).unwrap();
        let cs = encode(&[
            vec![s("GET")],
            vec![s("POST")],
            vec![Value::Null],
            vec![s("GET")],
        ]);
        let view = BatchView::new(&cs, 0, cs.len());
        let mut mask = Vec::new();
        assert!(k.eval_mask(&view, None, &mut mask));
        assert_eq!(mask, vec![true, false, false, true]);
    }

    #[test]
    fn cross_column_str_compare_goes_through_dictionaries() {
        use crate::expr::BoundPredicate as P;
        use crate::expr::BoundScalar as S;
        for op in [CmpOp::Eq, CmpOp::Lt] {
            let pred = P::Cmp {
                op,
                left: S::Column { scope: 1, index: 0 },
                right: S::Column { scope: 1, index: 1 },
            };
            let k = BatchPredicate::compile(&pred).unwrap();
            let rows = vec![
                vec![s("a"), s("a")],
                vec![s("a"), s("b")],
                vec![s("b"), s("a")],
                vec![Value::Null, s("a")],
            ];
            let cs = encode(&rows);
            let view = BatchView::new(&cs, 0, cs.len());
            let mut mask = Vec::new();
            assert!(k.eval_mask(&view, None, &mut mask));
            let expect: Vec<bool> = rows
                .iter()
                .map(|r| {
                    let scopes: [&[Value]; 2] = [&[], r];
                    pred.eval(&scopes).unwrap().passes()
                })
                .collect();
            assert_eq!(mask, expect, "op {op:?}");
        }
    }

    /// Compiled-mask evaluation must agree with the row path's
    /// WHERE-truncation on every supported type combination.
    #[test]
    fn mask_matches_row_eval() {
        use crate::expr::BoundPredicate as P;
        use crate::expr::BoundScalar as S;
        let pred = P::And(
            Box::new(P::Cmp {
                op: CmpOp::Ge,
                left: S::Column { scope: 1, index: 0 },
                right: S::Literal(Value::Int(2)),
            }),
            Box::new(P::Cmp {
                op: CmpOp::Eq,
                left: S::Column { scope: 0, index: 0 },
                right: S::Column { scope: 1, index: 1 },
            }),
        );
        let k = BatchPredicate::compile(&pred).expect("conjunction compiles");
        assert!(!k.detail_only());
        let base: Vec<Value> = vec![s("a")];
        let rows = vec![
            vec![Value::Int(1), s("a")],
            vec![Value::Int(2), s("a")],
            vec![Value::Null, s("a")],
            vec![Value::Int(5), s("b")],
        ];
        let cs = encode(&rows);
        let view = BatchView::new(&cs, 0, cs.len());
        let mut mask = Vec::new();
        assert!(k.eval_mask(&view, Some(&base), &mut mask));
        let expect: Vec<bool> = rows
            .iter()
            .map(|r| {
                let scopes: [&[Value]; 2] = [&base, r];
                pred.eval(&scopes).unwrap().passes()
            })
            .collect();
        assert_eq!(mask, expect);
    }

    #[test]
    fn incomparable_types_are_unsupported() {
        use crate::expr::BoundPredicate as P;
        use crate::expr::BoundScalar as S;
        let pred = P::Cmp {
            op: CmpOp::Eq,
            left: S::Column { scope: 1, index: 0 },
            right: S::Literal(s("nope")),
        };
        let k = BatchPredicate::compile(&pred).unwrap();
        let cs = encode(&[vec![Value::Int(1)]]);
        let view = BatchView::new(&cs, 0, 1);
        let mut mask = Vec::new();
        assert!(!k.eval_mask(&view, None, &mut mask));
    }

    #[test]
    fn null_literal_comparand_is_all_unknown_even_for_mixed_columns() {
        use crate::expr::BoundPredicate as P;
        use crate::expr::BoundScalar as S;
        let pred = P::Cmp {
            op: CmpOp::Eq,
            left: S::Column { scope: 1, index: 0 },
            right: S::Literal(Value::Null),
        };
        let k = BatchPredicate::compile(&pred).unwrap();
        let cs = encode(&[vec![Value::Int(1)], vec![s("x")]]);
        assert!(matches!(cs.col(0).data, ColumnStore::Other(_)));
        let view = BatchView::new(&cs, 0, 2);
        let mut mask = Vec::new();
        assert!(k.eval_mask(&view, None, &mut mask));
        assert_eq!(mask, vec![false, false]);
    }

    #[test]
    fn or_and_is_null_do_not_compile() {
        use crate::expr::BoundPredicate as P;
        use crate::expr::BoundScalar as S;
        let cmp = P::Cmp {
            op: CmpOp::Eq,
            left: S::Column { scope: 1, index: 0 },
            right: S::Literal(Value::Int(1)),
        };
        assert!(
            BatchPredicate::compile(&P::Or(Box::new(cmp.clone()), Box::new(cmp.clone()))).is_none()
        );
        assert!(BatchPredicate::compile(&P::IsNull(S::Column { scope: 1, index: 0 })).is_none());
        assert!(BatchPredicate::compile(&cmp).is_some());
    }
}
