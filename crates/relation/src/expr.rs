//! Scalar expressions and predicates.
//!
//! Expressions come in two stages:
//!
//! 1. **Logical** ([`ScalarExpr`], [`Predicate`]) — attribute references by
//!    (possibly qualified) name. These are what plans and the GMDJ
//!    θ-conditions are written in.
//! 2. **Bound** ([`BoundScalar`], [`BoundPredicate`]) — references resolved
//!    to `(scope, column)` positions against an ordered list of schemas.
//!    Evaluation takes `&[&[Value]]` — one tuple slice per scope — and does
//!    no name lookups, keeping the per-tuple cost of GMDJ/join inner loops
//!    to array indexing and value comparison.
//!
//! Scopes are ordered outermost → innermost; name resolution searches the
//! innermost scope first, matching SQL correlation rules. A GMDJ condition
//! θ over `B` and `R` binds against `[B, R]` and evaluates against
//! `[b_tuple, r_tuple]`.

use std::fmt;

use crate::error::{Error, Result};
use crate::schema::{ColumnRef, Schema};
use crate::value::{Truth, Value};

/// Arithmetic operators. Any NULL operand yields NULL; division by zero
/// yields NULL (SQL implementations differ here; NULL keeps queries total).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
}

impl fmt::Display for ArithOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArithOp::Add => write!(f, "+"),
            ArithOp::Sub => write!(f, "-"),
            ArithOp::Mul => write!(f, "*"),
            ArithOp::Div => write!(f, "/"),
        }
    }
}

/// Comparison operators φ ∈ {=, ≠, <, ≤, >, ≥}.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    /// The complement φ̄ used when eliminating negations:
    /// `¬(x φ y) ⇒ x φ̄ y` (for non-NULL operands; under 3VL the rewrite is
    /// exact because both sides are unknown when an operand is NULL).
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }

    /// The mirrored operator: `x φ y ≡ y flip(φ) x`.
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// Apply to an optional ordering (None = incomparable due to NULL).
    #[inline]
    pub fn apply(self, ord: Option<std::cmp::Ordering>) -> Truth {
        use std::cmp::Ordering::*;
        match ord {
            None => Truth::Unknown,
            Some(o) => Truth::from_bool(match self {
                CmpOp::Eq => o == Equal,
                CmpOp::Ne => o != Equal,
                CmpOp::Lt => o == Less,
                CmpOp::Le => o != Greater,
                CmpOp::Gt => o == Greater,
                CmpOp::Ge => o != Less,
            }),
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CmpOp::Eq => write!(f, "="),
            CmpOp::Ne => write!(f, "<>"),
            CmpOp::Lt => write!(f, "<"),
            CmpOp::Le => write!(f, "<="),
            CmpOp::Gt => write!(f, ">"),
            CmpOp::Ge => write!(f, ">="),
        }
    }
}

/// A scalar (value-producing) expression.
#[derive(Debug, Clone, PartialEq)]
pub enum ScalarExpr {
    /// Attribute reference.
    Column(ColumnRef),
    /// Constant.
    Literal(Value),
    /// Arithmetic.
    Binary {
        op: ArithOp,
        left: Box<ScalarExpr>,
        right: Box<ScalarExpr>,
    },
    /// `CASE WHEN p THEN e ... ELSE e END` (ELSE defaults to NULL).
    Case {
        branches: Vec<(Predicate, ScalarExpr)>,
        otherwise: Option<Box<ScalarExpr>>,
    },
}

/// Shorthand: column reference from `"Q.name"` / `"name"` syntax.
pub fn col(name: &str) -> ScalarExpr {
    ScalarExpr::Column(ColumnRef::parse(name))
}

/// Shorthand: literal.
pub fn lit(v: impl Into<Value>) -> ScalarExpr {
    ScalarExpr::Literal(v.into())
}

impl ScalarExpr {
    /// Comparison builder: `x.cmp_with(CmpOp::Lt, y)`.
    pub fn cmp_with(self, op: CmpOp, other: ScalarExpr) -> Predicate {
        Predicate::Cmp {
            op,
            left: self,
            right: other,
        }
    }

    pub fn eq(self, other: ScalarExpr) -> Predicate {
        self.cmp_with(CmpOp::Eq, other)
    }
    pub fn ne(self, other: ScalarExpr) -> Predicate {
        self.cmp_with(CmpOp::Ne, other)
    }
    pub fn lt(self, other: ScalarExpr) -> Predicate {
        self.cmp_with(CmpOp::Lt, other)
    }
    pub fn le(self, other: ScalarExpr) -> Predicate {
        self.cmp_with(CmpOp::Le, other)
    }
    pub fn gt(self, other: ScalarExpr) -> Predicate {
        self.cmp_with(CmpOp::Gt, other)
    }
    pub fn ge(self, other: ScalarExpr) -> Predicate {
        self.cmp_with(CmpOp::Ge, other)
    }

    /// Arithmetic builders. (Named like the operator traits on purpose —
    /// this is a DSL; the traits themselves are not implemented because
    /// the operands are owned AST nodes, not numbers.)
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Binary {
            op: ArithOp::Add,
            left: Box::new(self),
            right: Box::new(other),
        }
    }
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, other: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Binary {
            op: ArithOp::Sub,
            left: Box::new(self),
            right: Box::new(other),
        }
    }
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, other: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Binary {
            op: ArithOp::Mul,
            left: Box::new(self),
            right: Box::new(other),
        }
    }
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, other: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Binary {
            op: ArithOp::Div,
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// Collect every attribute reference in the expression.
    pub fn collect_columns(&self, out: &mut Vec<ColumnRef>) {
        match self {
            ScalarExpr::Column(c) => out.push(c.clone()),
            ScalarExpr::Literal(_) => {}
            ScalarExpr::Binary { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
            ScalarExpr::Case {
                branches,
                otherwise,
            } => {
                for (p, e) in branches {
                    p.collect_columns(out);
                    e.collect_columns(out);
                }
                if let Some(e) = otherwise {
                    e.collect_columns(out);
                }
            }
        }
    }

    /// Rebuild the expression with every attribute reference transformed.
    /// Used by the non-neighboring push-down rewrite (Theorems 3.3/3.4) to
    /// redirect references to a pushed-down table copy.
    pub fn map_columns(&self, f: &impl Fn(&ColumnRef) -> ColumnRef) -> ScalarExpr {
        match self {
            ScalarExpr::Column(c) => ScalarExpr::Column(f(c)),
            ScalarExpr::Literal(v) => ScalarExpr::Literal(v.clone()),
            ScalarExpr::Binary { op, left, right } => ScalarExpr::Binary {
                op: *op,
                left: Box::new(left.map_columns(f)),
                right: Box::new(right.map_columns(f)),
            },
            ScalarExpr::Case {
                branches,
                otherwise,
            } => ScalarExpr::Case {
                branches: branches
                    .iter()
                    .map(|(p, e)| (p.map_columns(f), e.map_columns(f)))
                    .collect(),
                otherwise: otherwise.as_ref().map(|e| Box::new(e.map_columns(f))),
            },
        }
    }

    /// Resolve attribute references against an ordered list of scopes
    /// (outermost first). Innermost scope wins for unqualified names.
    pub fn bind(&self, scopes: &[&Schema]) -> Result<BoundScalar> {
        match self {
            ScalarExpr::Column(c) => {
                let (scope, index) = resolve_in_scopes(c, scopes)?;
                Ok(BoundScalar::Column { scope, index })
            }
            ScalarExpr::Literal(v) => Ok(BoundScalar::Literal(v.clone())),
            ScalarExpr::Binary { op, left, right } => Ok(BoundScalar::Binary {
                op: *op,
                left: Box::new(left.bind(scopes)?),
                right: Box::new(right.bind(scopes)?),
            }),
            ScalarExpr::Case {
                branches,
                otherwise,
            } => Ok(BoundScalar::Case {
                branches: branches
                    .iter()
                    .map(|(p, e)| Ok((p.bind(scopes)?, e.bind(scopes)?)))
                    .collect::<Result<Vec<_>>>()?,
                otherwise: match otherwise {
                    Some(e) => Some(Box::new(e.bind(scopes)?)),
                    None => None,
                },
            }),
        }
    }
}

impl fmt::Display for ScalarExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarExpr::Column(c) => write!(f, "{c}"),
            ScalarExpr::Literal(v) => match v {
                Value::Str(s) => write!(f, "\"{s}\""),
                other => write!(f, "{other}"),
            },
            ScalarExpr::Binary { op, left, right } => write!(f, "({left} {op} {right})"),
            ScalarExpr::Case {
                branches,
                otherwise,
            } => {
                write!(f, "CASE")?;
                for (p, e) in branches {
                    write!(f, " WHEN {p} THEN {e}")?;
                }
                if let Some(e) = otherwise {
                    write!(f, " ELSE {e}")?;
                }
                write!(f, " END")
            }
        }
    }
}

/// A predicate (truth-valued expression) under three-valued logic.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Constant truth value. `Predicate::true_()` is the GMDJ seed
    /// condition in Algorithm SubqueryToGMDJ.
    Literal(Truth),
    /// `left φ right`.
    Cmp {
        op: CmpOp,
        left: ScalarExpr,
        right: ScalarExpr,
    },
    /// `IS NULL` (two-valued: never unknown).
    IsNull(ScalarExpr),
    /// `IS NOT NULL`.
    IsNotNull(ScalarExpr),
    And(Box<Predicate>, Box<Predicate>),
    Or(Box<Predicate>, Box<Predicate>),
    Not(Box<Predicate>),
}

impl Predicate {
    /// The always-true predicate.
    pub fn true_() -> Predicate {
        Predicate::Literal(Truth::True)
    }

    /// The always-false predicate.
    pub fn false_() -> Predicate {
        Predicate::Literal(Truth::False)
    }

    /// Conjunction builder that elides `true` operands.
    pub fn and(self, other: Predicate) -> Predicate {
        match (self, other) {
            (Predicate::Literal(Truth::True), p) | (p, Predicate::Literal(Truth::True)) => p,
            (a, b) => Predicate::And(Box::new(a), Box::new(b)),
        }
    }

    /// Disjunction builder that elides `false` operands.
    pub fn or(self, other: Predicate) -> Predicate {
        match (self, other) {
            (Predicate::Literal(Truth::False), p) | (p, Predicate::Literal(Truth::False)) => p,
            (a, b) => Predicate::Or(Box::new(a), Box::new(b)),
        }
    }

    /// Negation builder.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Predicate {
        Predicate::Not(Box::new(self))
    }

    /// Conjoin a list of predicates (`true` when empty).
    pub fn conjoin(preds: impl IntoIterator<Item = Predicate>) -> Predicate {
        preds.into_iter().fold(Predicate::true_(), Predicate::and)
    }

    /// Flatten nested conjunctions into a list of conjuncts.
    pub fn split_conjuncts(&self) -> Vec<&Predicate> {
        let mut out = Vec::new();
        fn walk<'a>(p: &'a Predicate, out: &mut Vec<&'a Predicate>) {
            match p {
                Predicate::And(a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
                Predicate::Literal(Truth::True) => {}
                other => out.push(other),
            }
        }
        walk(self, &mut out);
        out
    }

    /// Collect every attribute reference.
    pub fn collect_columns(&self, out: &mut Vec<ColumnRef>) {
        match self {
            Predicate::Literal(_) => {}
            Predicate::Cmp { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
            Predicate::IsNull(e) | Predicate::IsNotNull(e) => e.collect_columns(out),
            Predicate::And(a, b) | Predicate::Or(a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
            Predicate::Not(p) => p.collect_columns(out),
        }
    }

    /// All attribute references (owned convenience wrapper).
    pub fn columns(&self) -> Vec<ColumnRef> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    /// Rebuild the predicate with every attribute reference transformed
    /// (see [`ScalarExpr::map_columns`]).
    pub fn map_columns(&self, f: &impl Fn(&ColumnRef) -> ColumnRef) -> Predicate {
        match self {
            Predicate::Literal(t) => Predicate::Literal(*t),
            Predicate::Cmp { op, left, right } => Predicate::Cmp {
                op: *op,
                left: left.map_columns(f),
                right: right.map_columns(f),
            },
            Predicate::IsNull(e) => Predicate::IsNull(e.map_columns(f)),
            Predicate::IsNotNull(e) => Predicate::IsNotNull(e.map_columns(f)),
            Predicate::And(a, b) => {
                Predicate::And(Box::new(a.map_columns(f)), Box::new(b.map_columns(f)))
            }
            Predicate::Or(a, b) => {
                Predicate::Or(Box::new(a.map_columns(f)), Box::new(b.map_columns(f)))
            }
            Predicate::Not(p) => Predicate::Not(Box::new(p.map_columns(f))),
        }
    }

    /// Resolve against scopes (outermost first; innermost wins).
    pub fn bind(&self, scopes: &[&Schema]) -> Result<BoundPredicate> {
        match self {
            Predicate::Literal(t) => Ok(BoundPredicate::Literal(*t)),
            Predicate::Cmp { op, left, right } => Ok(BoundPredicate::Cmp {
                op: *op,
                left: left.bind(scopes)?,
                right: right.bind(scopes)?,
            }),
            Predicate::IsNull(e) => Ok(BoundPredicate::IsNull(e.bind(scopes)?)),
            Predicate::IsNotNull(e) => Ok(BoundPredicate::IsNotNull(e.bind(scopes)?)),
            Predicate::And(a, b) => Ok(BoundPredicate::And(
                Box::new(a.bind(scopes)?),
                Box::new(b.bind(scopes)?),
            )),
            Predicate::Or(a, b) => Ok(BoundPredicate::Or(
                Box::new(a.bind(scopes)?),
                Box::new(b.bind(scopes)?),
            )),
            Predicate::Not(p) => Ok(BoundPredicate::Not(Box::new(p.bind(scopes)?))),
        }
    }

    /// Bind against a single schema and evaluate a single tuple —
    /// convenience for tests.
    pub fn eval_row(&self, schema: &Schema, row: &[Value]) -> Result<Truth> {
        self.bind(&[schema])?.eval(&[row])
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::Literal(t) => write!(f, "{t}"),
            Predicate::Cmp { op, left, right } => write!(f, "{left} {op} {right}"),
            Predicate::IsNull(e) => write!(f, "{e} IS NULL"),
            Predicate::IsNotNull(e) => write!(f, "{e} IS NOT NULL"),
            Predicate::And(a, b) => write!(f, "({a} ∧ {b})"),
            Predicate::Or(a, b) => write!(f, "({a} ∨ {b})"),
            Predicate::Not(p) => write!(f, "¬({p})"),
        }
    }
}

fn resolve_in_scopes(c: &ColumnRef, scopes: &[&Schema]) -> Result<(usize, usize)> {
    // Innermost scope wins: search from the end.
    for (scope_idx, schema) in scopes.iter().enumerate().rev() {
        match c.resolve_in(schema) {
            Ok(index) => return Ok((scope_idx, index)),
            Err(Error::AmbiguousColumn { .. }) if c.qualifier.is_none() => {
                // Ambiguity within the innermost scope that knows the name
                // is a real error.
                return c.resolve_in(schema).map(|i| (scope_idx, i));
            }
            Err(_) => continue,
        }
    }
    Err(Error::UnknownColumn {
        name: c.to_string(),
        in_scope: scopes.iter().flat_map(|s| s.qualified_names()).collect(),
    })
}

/// A scalar expression with attribute references resolved to
/// `(scope, column)` positions.
#[derive(Debug, Clone)]
pub enum BoundScalar {
    Column {
        scope: usize,
        index: usize,
    },
    Literal(Value),
    Binary {
        op: ArithOp,
        left: Box<BoundScalar>,
        right: Box<BoundScalar>,
    },
    Case {
        branches: Vec<(BoundPredicate, BoundScalar)>,
        otherwise: Option<Box<BoundScalar>>,
    },
}

impl BoundScalar {
    /// Evaluate against one tuple slice per scope.
    pub fn eval(&self, rows: &[&[Value]]) -> Result<Value> {
        match self {
            BoundScalar::Column { scope, index } => Ok(rows[*scope][*index].clone()),
            BoundScalar::Literal(v) => Ok(v.clone()),
            BoundScalar::Binary { op, left, right } => {
                let l = left.eval(rows)?;
                let r = right.eval(rows)?;
                arith(*op, &l, &r)
            }
            BoundScalar::Case {
                branches,
                otherwise,
            } => {
                for (p, e) in branches {
                    if p.eval(rows)?.passes() {
                        return e.eval(rows);
                    }
                }
                match otherwise {
                    Some(e) => e.eval(rows),
                    None => Ok(Value::Null),
                }
            }
        }
    }
}

fn arith(op: ArithOp, l: &Value, r: &Value) -> Result<Value> {
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    // Integer arithmetic stays integral; anything involving a float widens.
    if let (Value::Int(a), Value::Int(b)) = (l, r) {
        return Ok(match op {
            ArithOp::Add => Value::Int(a.wrapping_add(*b)),
            ArithOp::Sub => Value::Int(a.wrapping_sub(*b)),
            ArithOp::Mul => Value::Int(a.wrapping_mul(*b)),
            ArithOp::Div => {
                if *b == 0 {
                    Value::Null
                } else {
                    // SQL integer division truncates; we promote to float to
                    // keep ratios like sum1/sum2 (Example 2.1) exact.
                    Value::Float(*a as f64 / *b as f64)
                }
            }
        });
    }
    match (l.as_f64(), r.as_f64()) {
        (Some(a), Some(b)) => Ok(match op {
            ArithOp::Add => Value::Float(a + b),
            ArithOp::Sub => Value::Float(a - b),
            ArithOp::Mul => Value::Float(a * b),
            ArithOp::Div => {
                if b == 0.0 {
                    Value::Null
                } else {
                    Value::Float(a / b)
                }
            }
        }),
        _ => Err(Error::TypeMismatch {
            context: format!("arithmetic {op}"),
            left: l.to_string(),
            right: r.to_string(),
        }),
    }
}

/// A predicate with attribute references resolved to positions.
#[derive(Debug, Clone)]
pub enum BoundPredicate {
    Literal(Truth),
    Cmp {
        op: CmpOp,
        left: BoundScalar,
        right: BoundScalar,
    },
    IsNull(BoundScalar),
    IsNotNull(BoundScalar),
    And(Box<BoundPredicate>, Box<BoundPredicate>),
    Or(Box<BoundPredicate>, Box<BoundPredicate>),
    Not(Box<BoundPredicate>),
}

impl BoundPredicate {
    /// Evaluate under 3VL against one tuple slice per scope.
    pub fn eval(&self, rows: &[&[Value]]) -> Result<Truth> {
        match self {
            BoundPredicate::Literal(t) => Ok(*t),
            BoundPredicate::Cmp { op, left, right } => {
                let l = left.eval(rows)?;
                let r = right.eval(rows)?;
                Ok(op.apply(l.sql_cmp(&r)?))
            }
            BoundPredicate::IsNull(e) => Ok(Truth::from_bool(e.eval(rows)?.is_null())),
            BoundPredicate::IsNotNull(e) => Ok(Truth::from_bool(!e.eval(rows)?.is_null())),
            BoundPredicate::And(a, b) => {
                // Short-circuit on False only: False ∧ x = False for all x.
                let l = a.eval(rows)?;
                if l == Truth::False {
                    return Ok(Truth::False);
                }
                Ok(l.and(b.eval(rows)?))
            }
            BoundPredicate::Or(a, b) => {
                let l = a.eval(rows)?;
                if l == Truth::True {
                    return Ok(Truth::True);
                }
                Ok(l.or(b.eval(rows)?))
            }
            BoundPredicate::Not(p) => Ok(p.eval(rows)?.not()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::DataType;

    fn schema() -> std::sync::Arc<Schema> {
        Schema::qualified("T", &[("a", DataType::Int), ("b", DataType::Int)])
    }

    #[test]
    fn comparison_over_null_is_unknown() {
        let s = schema();
        let p = col("T.a").eq(lit(1));
        assert_eq!(
            p.eval_row(&s, &[Value::Null, Value::Int(0)]).unwrap(),
            Truth::Unknown
        );
        assert_eq!(
            p.eval_row(&s, &[Value::Int(1), Value::Int(0)]).unwrap(),
            Truth::True
        );
    }

    #[test]
    fn is_null_is_two_valued() {
        let s = schema();
        let p = Predicate::IsNull(col("a"));
        assert_eq!(
            p.eval_row(&s, &[Value::Null, Value::Int(0)]).unwrap(),
            Truth::True
        );
        assert_eq!(
            p.eval_row(&s, &[Value::Int(5), Value::Int(0)]).unwrap(),
            Truth::False
        );
    }

    #[test]
    fn arithmetic_null_propagation_and_div_zero() {
        let s = schema();
        let e = col("a").div(col("b"));
        let b = e.bind(&[&s]).unwrap();
        assert!(b.eval(&[&[Value::Int(6), Value::Int(3)]]).unwrap() == Value::Float(2.0));
        assert!(b
            .eval(&[&[Value::Int(6), Value::Int(0)]])
            .unwrap()
            .is_null());
        assert!(b.eval(&[&[Value::Null, Value::Int(3)]]).unwrap().is_null());
    }

    #[test]
    fn multi_scope_binding_prefers_innermost() {
        let outer = Schema::qualified("O", &[("x", DataType::Int)]);
        let inner = Schema::qualified("I", &[("x", DataType::Int)]);
        // Unqualified `x` resolves to the inner scope.
        let p = col("x").eq(lit(1));
        let bp = p.bind(&[&outer, &inner]).unwrap();
        let o = [Value::Int(0)];
        let i = [Value::Int(1)];
        assert_eq!(bp.eval(&[&o, &i]).unwrap(), Truth::True);
        // Qualified `O.x` reaches the outer scope.
        let p = col("O.x").eq(lit(1));
        let bp = p.bind(&[&outer, &inner]).unwrap();
        assert_eq!(bp.eval(&[&o, &i]).unwrap(), Truth::False);
    }

    #[test]
    fn unknown_column_lists_scope() {
        let s = schema();
        let err = col("T.zzz").eq(lit(1)).bind(&[&s]).unwrap_err();
        match err {
            Error::UnknownColumn { in_scope, .. } => {
                assert!(in_scope.contains(&"T.a".to_string()));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn conjunct_splitting_flattens() {
        let p = col("a")
            .eq(lit(1))
            .and(col("b").gt(lit(2)).and(col("a").ne(col("b"))));
        assert_eq!(p.split_conjuncts().len(), 3);
        assert_eq!(Predicate::true_().split_conjuncts().len(), 0);
    }

    #[test]
    fn negate_and_flip() {
        assert_eq!(CmpOp::Lt.negate(), CmpOp::Ge);
        assert_eq!(CmpOp::Lt.flip(), CmpOp::Gt);
        assert_eq!(CmpOp::Eq.negate(), CmpOp::Ne);
        assert_eq!(CmpOp::Eq.flip(), CmpOp::Eq);
    }

    #[test]
    fn case_expression_defaults_to_null() {
        let s = schema();
        let e = ScalarExpr::Case {
            branches: vec![(col("a").gt(lit(0)), lit(1))],
            otherwise: None,
        };
        let b = e.bind(&[&s]).unwrap();
        assert_eq!(
            b.eval(&[&[Value::Int(5), Value::Int(0)]]).unwrap(),
            Value::Int(1)
        );
        assert!(b
            .eval(&[&[Value::Int(-5), Value::Int(0)]])
            .unwrap()
            .is_null());
        // Unknown predicate does not take the branch.
        assert!(b.eval(&[&[Value::Null, Value::Int(0)]]).unwrap().is_null());
    }

    #[test]
    fn and_short_circuits_false_before_type_errors() {
        let s = schema();
        // a = "x" would be a type error on ints, but the left conjunct is
        // false so evaluation never reaches it.
        let p = Predicate::false_().and(col("a").eq(lit("x")));
        assert_eq!(
            p.eval_row(&s, &[Value::Int(1), Value::Int(2)]).unwrap(),
            Truth::False
        );
    }

    #[test]
    fn display_is_readable() {
        let p = col("F.a").ge(lit(10)).and(col("F.b").eq(lit("HTTP")));
        assert_eq!(p.to_string(), "(F.a >= 10 ∧ F.b = \"HTTP\")");
    }
}
