//! Native columnar storage: typed column vectors with validity bitmaps.
//!
//! Since the morsel-execution refactor the columnar form *is* the relation:
//! [`crate::Relation`] stores an Arc-shared [`ColumnSet`] and materializes
//! boxed-tuple rows only on demand (the late-materialization view used by
//! the row-path oracle, completion plans, and CSV ingest). Kernels in
//! [`crate::batch`] borrow column slices straight out of this module
//! instead of decoding per query.
//!
//! Column typing follows the same rules the old per-query decode used:
//! a column is typed iff every non-NULL value shares one runtime kind
//! (deliberately *no* Int→Float promotion — mixed numerics would change
//! which comparison kernel runs per element), otherwise it degrades to an
//! [`ColumnStore::Other`] value vector that the row-semantics fallback
//! handles. String columns are dictionary encoded: rows store `u32` codes
//! into a per-column dictionary of interned strings with precomputed Fx
//! hashes, so equality probes compare one cached hash and the typed string
//! index is probed without rehashing bytes.

use std::sync::Arc;

use crate::fxhash::{hash_str, FxHashMap};
use crate::relation::Tuple;
use crate::value::Value;

/// Rows per column chunk — the paging and batching granule. One chunk of
/// one column is one buffer-pool page ([`crate::storage::PageId`]) and one
/// kernel batch window, so the paper's page-count arithmetic and the
/// vectorization window coincide.
pub const COLUMN_CHUNK_ROWS: usize = 1024;

/// Typed backing store of one column.
#[derive(Debug, Clone)]
pub enum ColumnStore {
    /// All non-NULL values are `Value::Int`.
    Int(Vec<i64>),
    /// All non-NULL values are `Value::Float`.
    Float(Vec<f64>),
    /// All non-NULL values are `Value::Str`, dictionary encoded. `codes`
    /// has one entry per row (NULL rows store code 0 and are masked by the
    /// validity bitmap); `dict` and `dict_hashes` are indexed by code.
    Str {
        codes: Vec<u32>,
        dict: Vec<Arc<str>>,
        dict_hashes: Vec<u64>,
    },
    /// All non-NULL values are `Value::Bool`.
    Bool(Vec<bool>),
    /// Mixed runtime kinds: the original values, row semantics only.
    Other(Vec<Value>),
}

/// One stored column: typed data plus a validity bitmap.
///
/// `nulls[i]` is true where row `i` is SQL NULL; the typed vectors hold an
/// arbitrary placeholder at those slots (zero / code 0), so every consumer
/// must check validity before touching data. `has_nulls` lets kernels skip
/// the bitmap entirely on fully-valid columns.
#[derive(Debug, Clone)]
pub struct StoredColumn {
    pub data: ColumnStore,
    pub nulls: Vec<bool>,
    pub has_nulls: bool,
}

impl StoredColumn {
    fn encode(rows: &[Tuple], col: usize) -> StoredColumn {
        let nulls: Vec<bool> = rows.iter().map(|r| r[col].is_null()).collect();
        let has_nulls = nulls.iter().any(|&n| n);

        // A column is typed iff all non-NULL values share one kind.
        #[derive(PartialEq, Clone, Copy)]
        enum Kind {
            Int,
            Float,
            Str,
            Bool,
        }
        let mut kind: Option<Kind> = None;
        let mut uniform = true;
        for row in rows {
            let k = match &row[col] {
                Value::Null => continue,
                Value::Int(_) => Kind::Int,
                Value::Float(_) => Kind::Float,
                Value::Str(_) => Kind::Str,
                Value::Bool(_) => Kind::Bool,
            };
            match kind {
                None => kind = Some(k),
                Some(prev) if prev == k => {}
                Some(_) => {
                    uniform = false;
                    break;
                }
            }
        }
        if !uniform {
            return StoredColumn {
                data: ColumnStore::Other(rows.iter().map(|r| r[col].clone()).collect()),
                nulls,
                has_nulls,
            };
        }
        let data = match kind {
            // All-NULL: an Int placeholder fully masked by the bitmap.
            None => ColumnStore::Int(vec![0; rows.len()]),
            Some(Kind::Int) => {
                ColumnStore::Int(rows.iter().map(|r| r[col].as_i64().unwrap_or(0)).collect())
            }
            Some(Kind::Float) => ColumnStore::Float(
                rows.iter()
                    .map(|r| match &r[col] {
                        Value::Float(f) => *f,
                        _ => 0.0,
                    })
                    .collect(),
            ),
            Some(Kind::Bool) => ColumnStore::Bool(
                rows.iter()
                    .map(|r| matches!(&r[col], Value::Bool(true)))
                    .collect(),
            ),
            Some(Kind::Str) => {
                let mut lookup: FxHashMap<Arc<str>, u32> = FxHashMap::default();
                let mut dict: Vec<Arc<str>> = Vec::new();
                let mut dict_hashes: Vec<u64> = Vec::new();
                let mut codes: Vec<u32> = Vec::with_capacity(rows.len());
                for row in rows {
                    match &row[col] {
                        Value::Str(s) => {
                            let code = match lookup.get(s.as_ref()) {
                                Some(&c) => c,
                                None => {
                                    let c = dict.len() as u32;
                                    dict.push(Arc::clone(s));
                                    dict_hashes.push(hash_str(s));
                                    lookup.insert(Arc::clone(s), c);
                                    c
                                }
                            };
                            codes.push(code);
                        }
                        _ => codes.push(0),
                    }
                }
                ColumnStore::Str {
                    codes,
                    dict,
                    dict_hashes,
                }
            }
        };
        StoredColumn {
            data,
            nulls,
            has_nulls,
        }
    }

    /// Reconstruct the row value at `row` (NULL where masked).
    pub fn value_at(&self, row: usize) -> Value {
        if self.nulls[row] {
            // `Other` stores the literal Null, everything else a placeholder.
            return Value::Null;
        }
        match &self.data {
            ColumnStore::Int(v) => Value::Int(v[row]),
            ColumnStore::Float(v) => Value::Float(v[row]),
            ColumnStore::Str { codes, dict, .. } => {
                Value::Str(Arc::clone(&dict[codes[row] as usize]))
            }
            ColumnStore::Bool(v) => Value::Bool(v[row]),
            ColumnStore::Other(v) => v[row].clone(),
        }
    }

    fn gather(&self, indices: &[usize]) -> StoredColumn {
        let nulls: Vec<bool> = indices.iter().map(|&i| self.nulls[i]).collect();
        let has_nulls = nulls.iter().any(|&n| n);
        let data = match &self.data {
            ColumnStore::Int(v) => ColumnStore::Int(indices.iter().map(|&i| v[i]).collect()),
            ColumnStore::Float(v) => ColumnStore::Float(indices.iter().map(|&i| v[i]).collect()),
            ColumnStore::Bool(v) => ColumnStore::Bool(indices.iter().map(|&i| v[i]).collect()),
            // The dictionary is shared wholesale: codes stay valid and the
            // fragment keeps the relation-global encoding (a fragment of a
            // mixed column stays `Other` even if it happens to be uniform).
            ColumnStore::Str {
                codes,
                dict,
                dict_hashes,
            } => ColumnStore::Str {
                codes: indices.iter().map(|&i| codes[i]).collect(),
                dict: dict.clone(),
                dict_hashes: dict_hashes.clone(),
            },
            ColumnStore::Other(v) => {
                ColumnStore::Other(indices.iter().map(|&i| v[i].clone()).collect())
            }
        };
        StoredColumn {
            data,
            nulls,
            has_nulls,
        }
    }
}

/// A fixed-length set of stored columns — the native body of a relation.
#[derive(Debug, Clone, Default)]
pub struct ColumnSet {
    len: usize,
    cols: Vec<StoredColumn>,
}

impl ColumnSet {
    /// Encode a row multiset into columns. `width` is the schema arity
    /// (needed because `rows` may be empty).
    pub fn encode(rows: &[Tuple], width: usize) -> ColumnSet {
        ColumnSet {
            len: rows.len(),
            cols: (0..width).map(|c| StoredColumn::encode(rows, c)).collect(),
        }
    }

    /// The empty column set of a given arity.
    pub fn empty(width: usize) -> ColumnSet {
        ColumnSet::encode(&[], width)
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.cols.len()
    }

    /// Column accessor.
    pub fn col(&self, i: usize) -> &StoredColumn {
        &self.cols[i]
    }

    /// Reconstruct one cell.
    pub fn value_at(&self, row: usize, col: usize) -> Value {
        self.cols[col].value_at(row)
    }

    /// Late-materialize one full row into `out` (cleared first). Used by
    /// the row-semantics fallbacks so a row is rebuilt at most once per
    /// detail position, however many candidates touch it.
    pub fn fill_row(&self, row: usize, out: &mut Vec<Value>) {
        out.clear();
        out.extend(self.cols.iter().map(|c| c.value_at(row)));
    }

    /// Late-materialize every row (the oracle / ingest view).
    pub fn materialize(&self) -> Vec<Tuple> {
        let mut scratch = Vec::with_capacity(self.width());
        (0..self.len)
            .map(|r| {
                self.fill_row(r, &mut scratch);
                scratch.as_slice().into()
            })
            .collect()
    }

    /// Gather the given row positions into a new column set (used to build
    /// distributed fragments without a round trip through rows).
    pub fn gather(&self, indices: &[usize]) -> ColumnSet {
        ColumnSet {
            len: indices.len(),
            cols: self.cols.iter().map(|c| c.gather(indices)).collect(),
        }
    }

    /// Project a subset of columns (shared-nothing clone of the selected
    /// stored columns). Used by narrow column scans in storage.
    pub fn project(&self, columns: &[usize]) -> ColumnSet {
        ColumnSet {
            len: self.len,
            cols: columns.iter().map(|&c| self.cols[c].clone()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: Vec<Value>) -> Tuple {
        vals.into_boxed_slice()
    }

    #[test]
    fn uniform_int_column_with_nulls() {
        let rows = vec![
            t(vec![Value::Int(1)]),
            t(vec![Value::Null]),
            t(vec![Value::Int(3)]),
        ];
        let cs = ColumnSet::encode(&rows, 1);
        let c = cs.col(0);
        assert!(c.has_nulls);
        assert_eq!(c.nulls, vec![false, true, false]);
        match &c.data {
            ColumnStore::Int(v) => assert_eq!(v, &vec![1, 0, 3]),
            other => panic!("expected Int store, got {other:?}"),
        }
        assert_eq!(cs.value_at(1, 0), Value::Null);
        assert_eq!(cs.value_at(2, 0), Value::Int(3));
    }

    #[test]
    fn mixed_numeric_column_degrades_to_other() {
        // Deliberately no Int→Float promotion: mixed numerics take the
        // row-semantics path, exactly like the old per-query decode.
        let rows = vec![t(vec![Value::Int(1)]), t(vec![Value::Float(2.5)])];
        let cs = ColumnSet::encode(&rows, 1);
        assert!(matches!(cs.col(0).data, ColumnStore::Other(_)));
        assert_eq!(cs.value_at(1, 0), Value::Float(2.5));
    }

    #[test]
    fn all_null_column_is_masked_placeholder() {
        let rows = vec![t(vec![Value::Null]), t(vec![Value::Null])];
        let cs = ColumnSet::encode(&rows, 1);
        let c = cs.col(0);
        assert!(matches!(c.data, ColumnStore::Int(_)));
        assert!(c.nulls.iter().all(|&n| n));
        assert_eq!(cs.value_at(0, 0), Value::Null);
    }

    #[test]
    fn string_dictionary_dedups_and_caches_hashes() {
        let rows = vec![
            t(vec![Value::str("GET")]),
            t(vec![Value::str("POST")]),
            t(vec![Value::Null]),
            t(vec![Value::str("GET")]),
        ];
        let cs = ColumnSet::encode(&rows, 1);
        match &cs.col(0).data {
            ColumnStore::Str {
                codes,
                dict,
                dict_hashes,
            } => {
                assert_eq!(dict.len(), 2);
                assert_eq!(codes, &vec![0, 1, 0, 0]);
                assert_eq!(dict_hashes[0], hash_str("GET"));
                assert_eq!(dict_hashes[1], hash_str("POST"));
            }
            other => panic!("expected Str store, got {other:?}"),
        }
        assert_eq!(cs.value_at(2, 0), Value::Null);
        assert_eq!(cs.value_at(3, 0), Value::str("GET"));
    }

    #[test]
    fn materialize_round_trips() {
        let rows = vec![
            t(vec![Value::Int(1), Value::str("a"), Value::Null]),
            t(vec![Value::Int(2), Value::str("b"), Value::Bool(true)]),
            t(vec![Value::Null, Value::str("a"), Value::Bool(false)]),
        ];
        let cs = ColumnSet::encode(&rows, 3);
        assert_eq!(cs.materialize(), rows);
    }

    #[test]
    fn gather_builds_fragments() {
        let rows: Vec<Tuple> = (0..10)
            .map(|i| {
                t(vec![
                    Value::Int(i),
                    Value::str(if i % 2 == 0 { "e" } else { "o" }),
                ])
            })
            .collect();
        let cs = ColumnSet::encode(&rows, 2);
        let frag = cs.gather(&[1, 4, 7]);
        assert_eq!(frag.len(), 3);
        assert_eq!(
            frag.materialize(),
            vec![rows[1].clone(), rows[4].clone(), rows[7].clone()]
        );
    }

    #[test]
    fn project_selects_columns() {
        let rows = vec![t(vec![Value::Int(1), Value::str("x"), Value::Bool(true)])];
        let cs = ColumnSet::encode(&rows, 3);
        let p = cs.project(&[2, 0]);
        assert_eq!(p.width(), 2);
        assert_eq!(
            p.materialize(),
            vec![t(vec![Value::Bool(true), Value::Int(1)])]
        );
    }

    #[test]
    fn empty_set_has_width_but_no_rows() {
        let cs = ColumnSet::empty(4);
        assert!(cs.is_empty());
        assert_eq!(cs.width(), 4);
        assert!(cs.materialize().is_empty());
    }
}
