//! Paged storage with an LRU buffer pool — the I/O cost model behind the
//! paper's evaluation.
//!
//! The paper argues costs in terms of *scans of the detail relation* and
//! claims that "simple memory management techniques allow us to avoid
//! unnecessary buffer thrashing and compute the GMDJ at a well-defined
//! cost" (Section 2.3). This module makes those statements measurable:
//! relations are split into fixed-size pages, every access goes through a
//! [`BufferPool`] with LRU replacement, and [`IoStats`] separates logical
//! page touches from physical reads (misses).
//!
//! The arithmetic the paper relies on falls out directly:
//!
//! * a **sequential scan** of a relation with `P` pages through a pool of
//!   `B < P` frames misses all `P` pages, every time (LRU is defenceless
//!   against cyclic sequential access);
//! * the **memory-partitioned GMDJ** (k base partitions) performs `k`
//!   detail scans: exactly `k·P` physical reads — the "well-defined
//!   cost";
//! * a **tuple-iteration nested loop** re-scans the detail per outer
//!   tuple: `n·P` physical reads — the thrashing the GMDJ avoids.

use std::collections::VecDeque;

use crate::error::{Error, Result};
use crate::fxhash::FxHashSet;
use crate::relation::{Relation, Tuple};
use crate::schema::Schema;

/// Identifier of one page of one registered table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PageId {
    pub table: u32,
    pub page: u32,
}

/// Buffer pool I/O counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Page touches (every access).
    pub logical_reads: u64,
    /// Pool misses — pages that had to come from "disk".
    pub physical_reads: u64,
    /// Pool hits.
    pub hits: u64,
}

/// A fixed-capacity LRU buffer pool over page identifiers.
#[derive(Debug)]
pub struct BufferPool {
    capacity: usize,
    lru: VecDeque<PageId>,
    resident: FxHashSet<PageId>,
    /// Counters (reset with [`BufferPool::reset_stats`]).
    pub stats: IoStats,
}

impl BufferPool {
    /// Pool with space for `capacity` pages (min 1).
    pub fn new(capacity: usize) -> Self {
        BufferPool {
            capacity: capacity.max(1),
            lru: VecDeque::new(),
            resident: FxHashSet::default(),
            stats: IoStats::default(),
        }
    }

    /// Touch a page: returns true on a hit. Misses evict the least
    /// recently used frame.
    pub fn access(&mut self, pid: PageId) -> bool {
        self.stats.logical_reads += 1;
        if self.resident.contains(&pid) {
            self.stats.hits += 1;
            // Move to the back (most recently used).
            if let Some(pos) = self.lru.iter().position(|p| *p == pid) {
                self.lru.remove(pos);
            }
            self.lru.push_back(pid);
            return true;
        }
        self.stats.physical_reads += 1;
        if self.resident.len() >= self.capacity {
            if let Some(victim) = self.lru.pop_front() {
                self.resident.remove(&victim);
            }
        }
        self.resident.insert(pid);
        self.lru.push_back(pid);
        false
    }

    /// Number of frames.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Currently resident pages.
    pub fn resident_pages(&self) -> usize {
        self.resident.len()
    }

    /// Zero the counters (keep residency).
    pub fn reset_stats(&mut self) {
        self.stats = IoStats::default();
    }
}

/// An immutable relation split into fixed-size pages.
#[derive(Debug, Clone)]
pub struct PagedTable {
    schema: std::sync::Arc<Schema>,
    pages: Vec<Box<[Tuple]>>,
    rows: usize,
}

impl PagedTable {
    /// Page a relation at `rows_per_page` tuples per page.
    pub fn new(relation: &Relation, rows_per_page: usize) -> Result<Self> {
        let rpp = rows_per_page.max(1);
        if rows_per_page == 0 {
            return Err(Error::invalid("rows_per_page must be positive"));
        }
        let pages = relation
            .rows()
            .chunks(rpp)
            .map(|c| c.to_vec().into_boxed_slice())
            .collect();
        Ok(PagedTable {
            schema: relation.schema().clone(),
            pages,
            rows: relation.len(),
        })
    }

    /// Number of pages.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Number of tuples.
    pub fn row_count(&self) -> usize {
        self.rows
    }

    /// The schema.
    pub fn schema(&self) -> &std::sync::Arc<Schema> {
        &self.schema
    }
}

/// Named paged tables behind one buffer pool.
#[derive(Debug)]
pub struct StorageManager {
    tables: Vec<(String, PagedTable)>,
    /// The shared pool; public so callers can inspect or reset counters.
    pub pool: BufferPool,
}

impl StorageManager {
    /// Manager with a pool of `pool_pages` frames.
    pub fn new(pool_pages: usize) -> Self {
        StorageManager {
            tables: Vec::new(),
            pool: BufferPool::new(pool_pages),
        }
    }

    /// Register a relation; returns its table id.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        relation: &Relation,
        rows_per_page: usize,
    ) -> Result<u32> {
        let table = PagedTable::new(relation, rows_per_page)?;
        self.tables.push((name.into(), table));
        Ok(self.tables.len() as u32 - 1)
    }

    /// Look up a table id by name.
    pub fn table_id(&self, name: &str) -> Result<u32> {
        self.tables
            .iter()
            .position(|(n, _)| n == name)
            .map(|i| i as u32)
            .ok_or_else(|| Error::UnknownTable {
                name: name.to_string(),
            })
    }

    /// The paged table behind an id.
    pub fn table(&self, id: u32) -> Result<&PagedTable> {
        self.tables
            .get(id as usize)
            .map(|(_, t)| t)
            .ok_or_else(|| Error::invalid(format!("unknown table id {id}")))
    }

    /// Sequentially scan a table through the pool, materializing it as a
    /// relation. Every page is touched once in order — the access pattern
    /// of the GMDJ's detail scan.
    pub fn sequential_scan(&mut self, id: u32) -> Result<Relation> {
        let table = self
            .tables
            .get(id as usize)
            .map(|(_, t)| t)
            .ok_or_else(|| Error::invalid(format!("unknown table id {id}")))?;
        let mut rows = Vec::with_capacity(table.rows);
        let pages: Vec<usize> = (0..table.pages.len()).collect();
        let schema = table.schema.clone();
        for p in pages {
            self.pool.access(PageId {
                table: id,
                page: p as u32,
            });
            // (Re-borrow to appease the borrow checker after pool access.)
            let t = &self.tables[id as usize].1;
            rows.extend(t.pages[p].iter().cloned());
        }
        Ok(Relation::from_parts(schema, rows))
    }

    /// Touch the page containing row `row` of a table — the access
    /// pattern of an index probe into an unclustered table.
    pub fn touch_row(&mut self, id: u32, row: usize, rows_per_page: usize) {
        let page = (row / rows_per_page.max(1)) as u32;
        self.pool.access(PageId { table: id, page });
    }
}

/// Physical reads of `scans` consecutive sequential scans of a `pages`-page
/// table through a `pool` -frame LRU pool — the closed form the tests pin
/// the simulation against.
pub fn sequential_scan_cost(pages: u64, pool: u64, scans: u64) -> u64 {
    if scans == 0 {
        return 0;
    }
    if pool >= pages {
        // First scan faults everything in; the rest hit.
        pages
    } else {
        // Cyclic sequential access through a smaller LRU pool misses every
        // page, every scan.
        pages * scans
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::RelationBuilder;
    use crate::schema::DataType;

    fn rel(n: usize) -> Relation {
        let mut b = RelationBuilder::new("T").column("x", DataType::Int);
        for i in 0..n {
            b = b.row(vec![(i as i64).into()]);
        }
        b.build().unwrap()
    }

    #[test]
    fn paging_splits_rows() {
        let t = PagedTable::new(&rel(25), 10).unwrap();
        assert_eq!(t.page_count(), 3);
        assert_eq!(t.row_count(), 25);
        assert!(PagedTable::new(&rel(5), 0).is_err());
    }

    #[test]
    fn sequential_scan_materializes_and_counts() {
        let mut sm = StorageManager::new(2);
        let id = sm.register("t", &rel(25), 10).unwrap();
        let back = sm.sequential_scan(id).unwrap();
        assert!(back.multiset_eq(&rel(25)));
        assert_eq!(sm.pool.stats.logical_reads, 3);
        assert_eq!(sm.pool.stats.physical_reads, 3); // cold pool
    }

    #[test]
    fn repeated_scans_hit_when_pool_is_large_enough() {
        let mut sm = StorageManager::new(10);
        let id = sm.register("t", &rel(50), 10).unwrap(); // 5 pages ≤ 10 frames
        for _ in 0..4 {
            sm.sequential_scan(id).unwrap();
        }
        assert_eq!(
            sm.pool.stats.physical_reads,
            sequential_scan_cost(5, 10, 4),
            "only the first scan faults"
        );
        assert_eq!(sm.pool.stats.physical_reads, 5);
        assert_eq!(sm.pool.stats.hits, 15);
    }

    #[test]
    fn repeated_scans_thrash_when_pool_is_small() {
        // The classic LRU sequential-flooding pathology: 5 pages through
        // 4 frames misses everything, every time.
        let mut sm = StorageManager::new(4);
        let id = sm.register("t", &rel(50), 10).unwrap();
        for _ in 0..4 {
            sm.sequential_scan(id).unwrap();
        }
        assert_eq!(sm.pool.stats.physical_reads, sequential_scan_cost(5, 4, 4));
        assert_eq!(sm.pool.stats.physical_reads, 20);
        assert_eq!(sm.pool.stats.hits, 0);
    }

    /// The paper's cost comparison in page I/O: a tuple-iteration nested
    /// loop re-scans the detail per outer tuple; the k-partitioned GMDJ
    /// scans it k times; the in-memory GMDJ once.
    #[test]
    fn gmdj_scan_cost_vs_nested_loop() {
        let detail_pages = 100u64;
        let pool = 10u64;
        let outer_tuples = 1000u64;
        let gmdj_partitions = 4u64;
        let nested_loop = sequential_scan_cost(detail_pages, pool, outer_tuples);
        let partitioned_gmdj = sequential_scan_cost(detail_pages, pool, gmdj_partitions);
        let in_memory_gmdj = sequential_scan_cost(detail_pages, pool, 1);
        assert_eq!(nested_loop, 100_000);
        assert_eq!(partitioned_gmdj, 400);
        assert_eq!(in_memory_gmdj, 100);
        assert!(in_memory_gmdj <= partitioned_gmdj && partitioned_gmdj < nested_loop);
    }

    #[test]
    fn touch_row_maps_rows_to_pages() {
        let mut sm = StorageManager::new(2);
        let id = sm.register("t", &rel(30), 10).unwrap();
        sm.touch_row(id, 0, 10);
        sm.touch_row(id, 9, 10); // same page → hit
        sm.touch_row(id, 10, 10); // next page → miss
        assert_eq!(sm.pool.stats.physical_reads, 2);
        assert_eq!(sm.pool.stats.hits, 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut pool = BufferPool::new(2);
        let pid = |p| PageId { table: 0, page: p };
        assert!(!pool.access(pid(1)));
        assert!(!pool.access(pid(2)));
        assert!(pool.access(pid(1))); // refresh 1 → LRU order: 2, 1
        assert!(!pool.access(pid(3))); // evicts 2
        assert!(pool.access(pid(1)));
        assert!(!pool.access(pid(2))); // 2 was evicted
        assert_eq!(pool.resident_pages(), 2);
    }

    #[test]
    fn stats_reset_preserves_residency() {
        let mut pool = BufferPool::new(4);
        pool.access(PageId { table: 0, page: 0 });
        pool.reset_stats();
        assert_eq!(pool.stats, IoStats::default());
        assert!(
            pool.access(PageId { table: 0, page: 0 }),
            "page stayed resident"
        );
    }

    #[test]
    fn unknown_names_and_ids_error() {
        let mut sm = StorageManager::new(2);
        assert!(sm.table_id("nope").is_err());
        assert!(sm.sequential_scan(7).is_err());
        let id = sm.register("t", &rel(5), 2).unwrap();
        assert_eq!(sm.table_id("t").unwrap(), id);
        assert_eq!(sm.table(id).unwrap().page_count(), 3);
    }
}
