//! Column-chunk paged storage with a scan-aware buffer pool — the I/O
//! cost model behind the paper's evaluation.
//!
//! The paper argues costs in terms of *scans of the detail relation* and
//! claims that "simple memory management techniques allow us to avoid
//! unnecessary buffer thrashing and compute the GMDJ at a well-defined
//! cost" (Section 2.3). This module makes those statements measurable on
//! the native columnar layout: a relation is split per column into
//! fixed-size chunks, one chunk of one column is one page ([`PageId`]
//! carries the column dimension), every access goes through a
//! [`BufferPool`], and [`IoStats`] separates logical page touches from
//! physical reads (misses).
//!
//! The arithmetic the paper relies on falls out directly:
//!
//! * a **sequential scan** of a relation with `P` pages through a pool of
//!   `B < P` LRU frames misses all `P` pages, every time (LRU is
//!   defenceless against cyclic sequential access);
//! * the **memory-partitioned GMDJ** (k base partitions) performs `k`
//!   detail scans: exactly `k·P` physical reads — the "well-defined
//!   cost";
//! * a **tuple-iteration nested loop** re-scans the detail per outer
//!   tuple: `n·P` physical reads — the thrashing the GMDJ avoids.
//!
//! The columnar layout adds two levers the row layout did not have:
//!
//! * a **narrow scan** ([`StorageManager::scan_columns`]) touches only
//!   the chunks of the referenced columns — a query reading `c` of `w`
//!   columns pays `c/w` of the pages, and a pool too small for the full
//!   width can still hold the referenced columns entirely;
//! * a **scan-resistance hint** ([`BufferPool::with_scan_resistance`]):
//!   sequential accesses evict the most recently used frame instead of
//!   the least, so a cyclic scan stops flooding the pool and re-scans
//!   keep hitting the stable prefix that stayed resident.

use std::collections::VecDeque;
use std::sync::Arc;

use crate::columnar::ColumnSet;
use crate::error::{Error, Result};
use crate::fxhash::FxHashSet;
use crate::relation::Relation;
use crate::schema::Schema;

/// Identifier of one chunk of one column of one registered table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PageId {
    pub table: u32,
    /// Column whose chunk this page holds — the columnar dimension.
    pub column: u32,
    /// Chunk index down the column.
    pub page: u32,
}

/// Buffer pool I/O counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Page touches (every access).
    pub logical_reads: u64,
    /// Pool misses — pages that had to come from "disk".
    pub physical_reads: u64,
    /// Pool hits.
    pub hits: u64,
}

/// A fixed-capacity buffer pool over page identifiers. Random accesses
/// replace LRU; sequential accesses may opt into MRU replacement via
/// [`BufferPool::with_scan_resistance`].
#[derive(Debug)]
pub struct BufferPool {
    capacity: usize,
    /// Front = least recently used, back = most recently used.
    lru: VecDeque<PageId>,
    resident: FxHashSet<PageId>,
    scan_resistant: bool,
    /// Counters (reset with [`BufferPool::reset_stats`]).
    pub stats: IoStats,
}

impl BufferPool {
    /// Pool with space for `capacity` pages (min 1), plain LRU.
    pub fn new(capacity: usize) -> Self {
        BufferPool {
            capacity: capacity.max(1),
            lru: VecDeque::new(),
            resident: FxHashSet::default(),
            scan_resistant: false,
            stats: IoStats::default(),
        }
    }

    /// Toggle the scan-resistance hint: when on,
    /// [`BufferPool::access_sequential`] evicts the *most* recently used
    /// frame on a miss, so one cyclic scan cannot flood the pool and
    /// re-scans keep hitting the frames that stayed put. Random accesses
    /// ([`BufferPool::access`]) always stay LRU.
    pub fn with_scan_resistance(mut self, on: bool) -> Self {
        self.scan_resistant = on;
        self
    }

    /// Whether the scan-resistance hint is on.
    pub fn scan_resistant(&self) -> bool {
        self.scan_resistant
    }

    /// Touch a page: returns true on a hit. Misses evict the least
    /// recently used frame.
    pub fn access(&mut self, pid: PageId) -> bool {
        self.touch(pid, false)
    }

    /// Touch a page as part of a sequential scan. Identical to
    /// [`BufferPool::access`] unless the pool is scan-resistant, in which
    /// case a miss evicts the most recently used frame (the page the scan
    /// itself just pulled in) instead of flooding the whole pool.
    pub fn access_sequential(&mut self, pid: PageId) -> bool {
        self.touch(pid, self.scan_resistant)
    }

    fn touch(&mut self, pid: PageId, evict_mru: bool) -> bool {
        self.stats.logical_reads += 1;
        if self.resident.contains(&pid) {
            self.stats.hits += 1;
            // Move to the back (most recently used).
            if let Some(pos) = self.lru.iter().position(|p| *p == pid) {
                self.lru.remove(pos);
            }
            self.lru.push_back(pid);
            return true;
        }
        self.stats.physical_reads += 1;
        if self.resident.len() >= self.capacity {
            let victim = if evict_mru {
                self.lru.pop_back()
            } else {
                self.lru.pop_front()
            };
            if let Some(victim) = victim {
                self.resident.remove(&victim);
            }
        }
        self.resident.insert(pid);
        self.lru.push_back(pid);
        false
    }

    /// Number of frames.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Currently resident pages.
    pub fn resident_pages(&self) -> usize {
        self.resident.len()
    }

    /// Zero the counters (keep residency).
    pub fn reset_stats(&mut self) {
        self.stats = IoStats::default();
    }
}

/// An immutable relation paged per column: chunk `p` of column `c` is one
/// page. The tuples themselves are never copied — the table shares the
/// relation's column store and pages it logically.
#[derive(Debug, Clone)]
pub struct PagedTable {
    schema: Arc<Schema>,
    cols: Arc<ColumnSet>,
    chunk_rows: usize,
}

impl PagedTable {
    /// Page a relation at `rows_per_chunk` tuples per column chunk.
    pub fn new(relation: &Relation, rows_per_chunk: usize) -> Result<Self> {
        if rows_per_chunk == 0 {
            return Err(Error::invalid("rows_per_chunk must be positive"));
        }
        Ok(PagedTable {
            schema: relation.schema().clone(),
            cols: relation.cols_arc(),
            chunk_rows: rows_per_chunk,
        })
    }

    /// Number of chunks down each column.
    pub fn chunk_count(&self) -> usize {
        self.cols.len().div_ceil(self.chunk_rows)
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.cols.width()
    }

    /// Number of pages: chunks × columns. A narrow reader never touches
    /// most of them — that asymmetry is the point of the layout.
    pub fn page_count(&self) -> usize {
        self.chunk_count() * self.width()
    }

    /// Number of tuples.
    pub fn row_count(&self) -> usize {
        self.cols.len()
    }

    /// Rows per column chunk.
    pub fn chunk_rows(&self) -> usize {
        self.chunk_rows
    }

    /// The schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }
}

/// Named paged tables behind one buffer pool.
#[derive(Debug)]
pub struct StorageManager {
    tables: Vec<(String, PagedTable)>,
    /// The shared pool; public so callers can inspect or reset counters,
    /// or swap in a scan-resistant pool.
    pub pool: BufferPool,
}

impl StorageManager {
    /// Manager with a plain LRU pool of `pool_pages` frames.
    pub fn new(pool_pages: usize) -> Self {
        StorageManager {
            tables: Vec::new(),
            pool: BufferPool::new(pool_pages),
        }
    }

    /// Manager whose pool has the scan-resistance hint on.
    pub fn new_scan_resistant(pool_pages: usize) -> Self {
        StorageManager {
            tables: Vec::new(),
            pool: BufferPool::new(pool_pages).with_scan_resistance(true),
        }
    }

    /// Register a relation; returns its table id.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        relation: &Relation,
        rows_per_chunk: usize,
    ) -> Result<u32> {
        let table = PagedTable::new(relation, rows_per_chunk)?;
        self.tables.push((name.into(), table));
        Ok(self.tables.len() as u32 - 1)
    }

    /// Look up a table id by name.
    pub fn table_id(&self, name: &str) -> Result<u32> {
        self.tables
            .iter()
            .position(|(n, _)| n == name)
            .map(|i| i as u32)
            .ok_or_else(|| Error::UnknownTable {
                name: name.to_string(),
            })
    }

    /// The paged table behind an id.
    pub fn table(&self, id: u32) -> Result<&PagedTable> {
        self.tables
            .get(id as usize)
            .map(|(_, t)| t)
            .ok_or_else(|| Error::invalid(format!("unknown table id {id}")))
    }

    /// Sequentially scan every column of a table through the pool,
    /// returning a relation that shares the column store. Chunk-major:
    /// all columns of chunk 0, then chunk 1 — the access pattern of the
    /// GMDJ's full-width detail scan.
    pub fn sequential_scan(&mut self, id: u32) -> Result<Relation> {
        let t = self.table(id)?;
        let (schema, cols, chunk_rows) = (t.schema.clone(), t.cols.clone(), t.chunk_rows);
        let chunks = cols.len().div_ceil(chunk_rows);
        for chunk in 0..chunks {
            for column in 0..cols.width() {
                self.pool.access_sequential(PageId {
                    table: id,
                    column: column as u32,
                    page: chunk as u32,
                });
            }
        }
        Ok(Relation::from_columns(schema, cols))
    }

    /// Sequentially scan only the named columns — the narrow scan a
    /// projection-aware reader issues. Touches one page per (referenced
    /// column, chunk) and returns the projected relation; unreferenced
    /// columns cost nothing.
    pub fn scan_columns(&mut self, id: u32, columns: &[usize]) -> Result<Relation> {
        let t = self.table(id)?;
        let (schema, cols, chunk_rows) = (t.schema.clone(), t.cols.clone(), t.chunk_rows);
        for &c in columns {
            if c >= cols.width() {
                return Err(Error::invalid(format!(
                    "scan_columns: column {c} out of range (width {})",
                    cols.width()
                )));
            }
        }
        let chunks = cols.len().div_ceil(chunk_rows);
        for chunk in 0..chunks {
            for &column in columns {
                self.pool.access_sequential(PageId {
                    table: id,
                    column: column as u32,
                    page: chunk as u32,
                });
            }
        }
        let fields = columns
            .iter()
            .map(|&c| schema.field(c).clone())
            .collect::<Vec<_>>();
        Ok(Relation::from_columns(
            Schema::new(fields),
            Arc::new(cols.project(columns)),
        ))
    }

    /// Touch the pages containing row `row` of a table — the access
    /// pattern of an index probe into an unclustered table. Row access
    /// materializes across the full width, so every column's chunk is
    /// touched.
    pub fn touch_row(&mut self, id: u32, row: usize) {
        let Ok(t) = self.table(id) else { return };
        let (width, chunk_rows) = (t.cols.width(), t.chunk_rows);
        let page = (row / chunk_rows) as u32;
        for column in 0..width {
            self.pool.access(PageId {
                table: id,
                column: column as u32,
                page,
            });
        }
    }
}

/// Physical reads of `scans` consecutive sequential scans of `pages`
/// pages through a `pool`-frame plain-LRU pool — the closed form the
/// tests pin the simulation against. (The scan-resistant pool has no such
/// cliff: see `scan_resistance_stops_sequential_flooding`.)
pub fn sequential_scan_cost(pages: u64, pool: u64, scans: u64) -> u64 {
    if scans == 0 {
        return 0;
    }
    if pool >= pages {
        // First scan faults everything in; the rest hit.
        pages
    } else {
        // Cyclic sequential access through a smaller LRU pool misses every
        // page, every scan.
        pages * scans
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::RelationBuilder;
    use crate::schema::DataType;

    fn rel(n: usize) -> Relation {
        let mut b = RelationBuilder::new("T").column("x", DataType::Int);
        for i in 0..n {
            b = b.row(vec![(i as i64).into()]);
        }
        b.build().unwrap()
    }

    /// Two columns, so the page grid has a width axis to exercise.
    fn rel2(n: usize) -> Relation {
        let mut b = RelationBuilder::new("T")
            .column("x", DataType::Int)
            .column("y", DataType::Float);
        for i in 0..n {
            b = b.row(vec![(i as i64).into(), (i as f64 * 0.5).into()]);
        }
        b.build().unwrap()
    }

    #[test]
    fn paging_splits_rows() {
        let t = PagedTable::new(&rel(25), 10).unwrap();
        assert_eq!(t.chunk_count(), 3);
        assert_eq!(t.page_count(), 3);
        assert_eq!(t.row_count(), 25);
        assert!(PagedTable::new(&rel(5), 0).is_err());
        // The page grid is chunks × columns.
        let wide = PagedTable::new(&rel2(25), 10).unwrap();
        assert_eq!(wide.chunk_count(), 3);
        assert_eq!(wide.width(), 2);
        assert_eq!(wide.page_count(), 6);
    }

    #[test]
    fn sequential_scan_materializes_and_counts() {
        let mut sm = StorageManager::new(2);
        let id = sm.register("t", &rel(25), 10).unwrap();
        let back = sm.sequential_scan(id).unwrap();
        assert!(back.multiset_eq(&rel(25)));
        assert_eq!(sm.pool.stats.logical_reads, 3);
        assert_eq!(sm.pool.stats.physical_reads, 3); // cold pool
    }

    #[test]
    fn full_width_scan_touches_every_column_chunk() {
        let mut sm = StorageManager::new(6);
        let id = sm.register("t", &rel2(25), 10).unwrap();
        let back = sm.sequential_scan(id).unwrap();
        assert!(back.multiset_eq(&rel2(25)));
        assert_eq!(sm.pool.stats.logical_reads, 6); // 3 chunks × 2 columns
        assert_eq!(sm.pool.stats.physical_reads, 6);
    }

    #[test]
    fn narrow_scan_touches_only_referenced_columns() {
        let mut sm = StorageManager::new(6);
        let id = sm.register("t", &rel2(25), 10).unwrap();
        let narrow = sm.scan_columns(id, &[0]).unwrap();
        assert_eq!(narrow.schema().len(), 1);
        assert_eq!(narrow.len(), 25);
        assert_eq!(narrow.cols().value_at(7, 0), crate::value::Value::Int(7));
        // 3 chunks of one column; the Float column cost nothing.
        assert_eq!(sm.pool.stats.logical_reads, 3);
        assert_eq!(sm.pool.stats.physical_reads, 3);
        assert!(sm.scan_columns(id, &[2]).is_err());
    }

    #[test]
    fn repeated_scans_hit_when_pool_is_large_enough() {
        let mut sm = StorageManager::new(10);
        let id = sm.register("t", &rel(50), 10).unwrap(); // 5 pages ≤ 10 frames
        for _ in 0..4 {
            sm.sequential_scan(id).unwrap();
        }
        assert_eq!(
            sm.pool.stats.physical_reads,
            sequential_scan_cost(5, 10, 4),
            "only the first scan faults"
        );
        assert_eq!(sm.pool.stats.physical_reads, 5);
        assert_eq!(sm.pool.stats.hits, 15);
    }

    #[test]
    fn repeated_scans_thrash_when_pool_is_small() {
        // The classic LRU sequential-flooding pathology: 5 pages through
        // 4 frames misses everything, every time.
        let mut sm = StorageManager::new(4);
        let id = sm.register("t", &rel(50), 10).unwrap();
        for _ in 0..4 {
            sm.sequential_scan(id).unwrap();
        }
        assert_eq!(sm.pool.stats.physical_reads, sequential_scan_cost(5, 4, 4));
        assert_eq!(sm.pool.stats.physical_reads, 20);
        assert_eq!(sm.pool.stats.hits, 0);
    }

    #[test]
    fn scan_resistance_stops_sequential_flooding() {
        // Same 5-pages-through-4-frames cycle, but with the MRU hint on:
        // the first scan faults 5 pages; after that a stable 3-page
        // prefix stays resident and each lap misses only the rotating
        // remainder — 8 total misses instead of LRU's 20.
        let mut sm = StorageManager::new_scan_resistant(4);
        let id = sm.register("t", &rel(50), 10).unwrap();
        for _ in 0..4 {
            sm.sequential_scan(id).unwrap();
        }
        assert!(sm.pool.scan_resistant());
        assert_eq!(sm.pool.stats.physical_reads, 8);
        assert_eq!(sm.pool.stats.hits, 12);
        assert!(sm.pool.stats.physical_reads < sequential_scan_cost(5, 4, 4));
    }

    #[test]
    fn rescan_misses_vanish_when_pool_fits_referenced_columns() {
        // A pool far too small for the full width (10 pages through 5
        // frames) still holds the *referenced* column entirely (5 pages):
        // the narrow re-scan misses nothing, while the full-width re-scan
        // keeps paying. This is the layout's whole argument in one test.
        let mut sm = StorageManager::new_scan_resistant(5);
        let id = sm.register("t", &rel2(50), 10).unwrap(); // 5 chunks × 2 cols
        sm.sequential_scan(id).unwrap();
        sm.pool.reset_stats();
        sm.sequential_scan(id).unwrap();
        let full_rescan_misses = sm.pool.stats.physical_reads;
        assert!(full_rescan_misses > 0, "full width cannot fit 5 frames");

        let mut sm = StorageManager::new_scan_resistant(5);
        let id = sm.register("t", &rel2(50), 10).unwrap();
        sm.scan_columns(id, &[0]).unwrap();
        assert_eq!(sm.pool.stats.physical_reads, 5); // cold fill
        sm.pool.reset_stats();
        sm.scan_columns(id, &[0]).unwrap();
        assert_eq!(sm.pool.stats.physical_reads, 0, "re-scan is all hits");
        assert_eq!(sm.pool.stats.hits, 5);
    }

    /// The paper's cost comparison in page I/O: a tuple-iteration nested
    /// loop re-scans the detail per outer tuple; the k-partitioned GMDJ
    /// scans it k times; the in-memory GMDJ once.
    #[test]
    fn gmdj_scan_cost_vs_nested_loop() {
        let detail_pages = 100u64;
        let pool = 10u64;
        let outer_tuples = 1000u64;
        let gmdj_partitions = 4u64;
        let nested_loop = sequential_scan_cost(detail_pages, pool, outer_tuples);
        let partitioned_gmdj = sequential_scan_cost(detail_pages, pool, gmdj_partitions);
        let in_memory_gmdj = sequential_scan_cost(detail_pages, pool, 1);
        assert_eq!(nested_loop, 100_000);
        assert_eq!(partitioned_gmdj, 400);
        assert_eq!(in_memory_gmdj, 100);
        assert!(in_memory_gmdj <= partitioned_gmdj && partitioned_gmdj < nested_loop);
    }

    #[test]
    fn touch_row_maps_rows_to_pages() {
        let mut sm = StorageManager::new(2);
        let id = sm.register("t", &rel(30), 10).unwrap();
        sm.touch_row(id, 0);
        sm.touch_row(id, 9); // same page → hit
        sm.touch_row(id, 10); // next page → miss
        assert_eq!(sm.pool.stats.physical_reads, 2);
        assert_eq!(sm.pool.stats.hits, 1);
        // A wide table pays one touch per column of the row's chunk.
        let mut sm = StorageManager::new(4);
        let id = sm.register("t", &rel2(30), 10).unwrap();
        sm.touch_row(id, 0);
        assert_eq!(sm.pool.stats.logical_reads, 2);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut pool = BufferPool::new(2);
        let pid = |p| PageId {
            table: 0,
            column: 0,
            page: p,
        };
        assert!(!pool.access(pid(1)));
        assert!(!pool.access(pid(2)));
        assert!(pool.access(pid(1))); // refresh 1 → LRU order: 2, 1
        assert!(!pool.access(pid(3))); // evicts 2
        assert!(pool.access(pid(1)));
        assert!(!pool.access(pid(2))); // 2 was evicted
        assert_eq!(pool.resident_pages(), 2);
    }

    #[test]
    fn random_access_stays_lru_even_when_scan_resistant() {
        // The MRU hint only applies to accesses declared sequential;
        // probe-style `access` keeps LRU semantics.
        let mut pool = BufferPool::new(2).with_scan_resistance(true);
        let pid = |p| PageId {
            table: 0,
            column: 0,
            page: p,
        };
        pool.access(pid(1));
        pool.access(pid(2));
        pool.access(pid(3)); // LRU evicts 1
        assert!(pool.access(pid(2)), "2 stayed resident");
        assert!(!pool.access(pid(1)), "1 was the LRU victim");
    }

    #[test]
    fn stats_reset_preserves_residency() {
        let mut pool = BufferPool::new(4);
        pool.access(PageId {
            table: 0,
            column: 0,
            page: 0,
        });
        pool.reset_stats();
        assert_eq!(pool.stats, IoStats::default());
        assert!(
            pool.access(PageId {
                table: 0,
                column: 0,
                page: 0,
            }),
            "page stayed resident"
        );
    }

    #[test]
    fn unknown_names_and_ids_error() {
        let mut sm = StorageManager::new(2);
        assert!(sm.table_id("nope").is_err());
        assert!(sm.sequential_scan(7).is_err());
        let id = sm.register("t", &rel(5), 2).unwrap();
        assert_eq!(sm.table_id("t").unwrap(), id);
        assert_eq!(sm.table(id).unwrap().page_count(), 3);
    }
}
