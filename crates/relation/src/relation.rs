//! Multiset relations (SQL bag semantics), stored natively columnar.

use std::fmt;
use std::sync::{Arc, OnceLock};

use crate::columnar::ColumnSet;
use crate::error::{Error, Result};
use crate::schema::Schema;
use crate::value::Value;

/// A tuple is a boxed slice of values, positionally aligned with a
/// [`Schema`].
pub type Tuple = Box<[Value]>;

/// An in-memory multiset of tuples over a schema.
///
/// SQL relations are bags, not sets; duplicate elimination is an explicit
/// operator ([`crate::ops::distinct`]). All operators in this workspace
/// preserve multiset semantics.
///
/// The native representation is columnar ([`ColumnSet`]): typed column
/// vectors with validity bitmaps and dictionary-encoded strings, shared by
/// `Arc` across clones and renames. Row-at-a-time access ([`Relation::rows`])
/// is a *late-materialization view*, rebuilt lazily and cached — it exists
/// for the row-path oracle, completion plans, CSV ingest, and display, not
/// for the vectorized scan, which borrows column slices directly.
#[derive(Debug)]
pub struct Relation {
    schema: Arc<Schema>,
    cols: Arc<ColumnSet>,
    rows: OnceLock<Vec<Tuple>>,
}

impl Clone for Relation {
    /// Cloning shares the columns and drops the materialized-row cache.
    fn clone(&self) -> Self {
        Relation {
            schema: Arc::clone(&self.schema),
            cols: Arc::clone(&self.cols),
            rows: OnceLock::new(),
        }
    }
}

impl Relation {
    /// Construct from parts, validating tuple arity.
    pub fn new(schema: Arc<Schema>, rows: Vec<Tuple>) -> Result<Self> {
        for row in &rows {
            if row.len() != schema.len() {
                return Err(Error::ArityMismatch {
                    expected: schema.len(),
                    actual: row.len(),
                });
            }
        }
        Ok(Relation::from_parts(schema, rows))
    }

    /// Construct without validation, encoding the rows into columns.
    /// Callers must guarantee arity; this is the path used by operators
    /// that build rows against a known schema. The input rows are dropped
    /// after encoding — columnar is the only persistent representation.
    pub fn from_parts(schema: Arc<Schema>, rows: Vec<Tuple>) -> Self {
        debug_assert!(rows.iter().all(|r| r.len() == schema.len()));
        let cols = ColumnSet::encode(&rows, schema.len());
        Relation {
            schema,
            cols: Arc::new(cols),
            rows: OnceLock::new(),
        }
    }

    /// Construct directly from an encoded column set (fragment gathers,
    /// narrow storage scans).
    pub fn from_columns(schema: Arc<Schema>, cols: Arc<ColumnSet>) -> Self {
        debug_assert_eq!(schema.len(), cols.width());
        Relation {
            schema,
            cols,
            rows: OnceLock::new(),
        }
    }

    /// The empty relation over a schema.
    pub fn empty(schema: Arc<Schema>) -> Self {
        let cols = Arc::new(ColumnSet::empty(schema.len()));
        Relation {
            schema,
            cols,
            rows: OnceLock::new(),
        }
    }

    /// Schema accessor.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Columnar body accessor — the native representation.
    pub fn cols(&self) -> &ColumnSet {
        &self.cols
    }

    /// Shared handle on the column store, for views that page or fragment
    /// the relation without copying it (paged storage, fragments).
    pub fn cols_arc(&self) -> Arc<ColumnSet> {
        Arc::clone(&self.cols)
    }

    /// Row accessor: the late-materialization view. The first call rebuilds
    /// boxed tuples from the columns and caches them for the lifetime of
    /// this `Relation` value (clones start with a cold cache).
    pub fn rows(&self) -> &[Tuple] {
        self.rows.get_or_init(|| self.cols.materialize())
    }

    /// Number of tuples (with duplicates).
    pub fn len(&self) -> usize {
        self.cols.len()
    }

    /// True when there are no tuples.
    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }

    /// Consume into rows (materializing if no cached view exists).
    pub fn into_rows(self) -> Vec<Tuple> {
        match self.rows.into_inner() {
            Some(rows) => rows,
            None => self.cols.materialize(),
        }
    }

    /// Re-qualify every attribute: the paper's renaming `Flow → F`. The
    /// columnar body is shared, so this is O(schema).
    pub fn renamed(&self, qualifier: &str) -> Relation {
        Relation {
            schema: self.schema.with_qualifier(qualifier),
            cols: Arc::clone(&self.cols),
            rows: OnceLock::new(),
        }
    }

    /// Re-qualify without touching the body.
    pub fn into_renamed(self, qualifier: &str) -> Relation {
        Relation {
            schema: self.schema.with_qualifier(qualifier),
            cols: self.cols,
            rows: self.rows,
        }
    }

    /// Multiset equality irrespective of row order: both relations are
    /// sorted under the total value order and compared. Schemas must have
    /// the same arity; qualifiers are ignored (derived plans produce
    /// differently-qualified but equivalent outputs).
    pub fn multiset_eq(&self, other: &Relation) -> bool {
        if self.schema.len() != other.schema.len() || self.len() != other.len() {
            return false;
        }
        let mut a: Vec<&Tuple> = self.rows().iter().collect();
        let mut b: Vec<&Tuple> = other.rows().iter().collect();
        let cmp = |x: &&Tuple, y: &&Tuple| {
            for (u, v) in x.iter().zip(y.iter()) {
                let o = u.total_cmp(v);
                if o != std::cmp::Ordering::Equal {
                    return o;
                }
            }
            std::cmp::Ordering::Equal
        };
        a.sort_by(cmp);
        b.sort_by(cmp);
        a.iter()
            .zip(b.iter())
            .all(|(x, y)| cmp(x, y) == std::cmp::Ordering::Equal)
    }

    /// Rows sorted under the total order — deterministic output for
    /// examples and golden tests.
    pub fn sorted_rows(&self) -> Vec<Tuple> {
        let mut rows = self.rows().to_vec();
        rows.sort_by(|x, y| {
            for (u, v) in x.iter().zip(y.iter()) {
                let o = u.total_cmp(v);
                if o != std::cmp::Ordering::Equal {
                    return o;
                }
            }
            std::cmp::Ordering::Equal
        });
        rows
    }
}

impl fmt::Display for Relation {
    /// Render as an aligned ASCII table (used by the examples).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let headers: Vec<String> = self.schema.qualified_names();
        let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
        let rendered: Vec<Vec<String>> = self
            .rows()
            .iter()
            .map(|r| r.iter().map(|v| v.to_string()).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let rule = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            write!(f, "+")?;
            for w in &widths {
                write!(f, "{}+", "-".repeat(w + 2))?;
            }
            writeln!(f)
        };
        rule(f)?;
        write!(f, "|")?;
        for (h, w) in headers.iter().zip(&widths) {
            write!(f, " {h:<w$} |")?;
        }
        writeln!(f)?;
        rule(f)?;
        for row in &rendered {
            write!(f, "|")?;
            for (c, w) in row.iter().zip(&widths) {
                write!(f, " {c:<w$} |")?;
            }
            writeln!(f)?;
        }
        rule(f)?;
        writeln!(f, "({} rows)", self.len())
    }
}

/// Ergonomic construction of small relations for tests and examples.
///
/// ```
/// use gmdj_relation::{RelationBuilder, DataType};
/// let hours = RelationBuilder::new("H")
///     .column("HourDsc", DataType::Int)
///     .column("StartInterval", DataType::Int)
///     .column("EndInterval", DataType::Int)
///     .row(vec![1.into(), 0.into(), 60.into()])
///     .row(vec![2.into(), 61.into(), 120.into()])
///     .build()
///     .unwrap();
/// assert_eq!(hours.len(), 2);
/// ```
pub struct RelationBuilder {
    qualifier: String,
    columns: Vec<(String, crate::schema::DataType)>,
    rows: Vec<Vec<Value>>,
}

impl RelationBuilder {
    /// Start a builder; every column will carry `qualifier`.
    pub fn new(qualifier: impl Into<String>) -> Self {
        RelationBuilder {
            qualifier: qualifier.into(),
            columns: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Append a column.
    pub fn column(mut self, name: impl Into<String>, dt: crate::schema::DataType) -> Self {
        self.columns.push((name.into(), dt));
        self
    }

    /// Append a row.
    pub fn row(mut self, values: Vec<Value>) -> Self {
        self.rows.push(values);
        self
    }

    /// Append many rows.
    pub fn rows(mut self, rows: impl IntoIterator<Item = Vec<Value>>) -> Self {
        self.rows.extend(rows);
        self
    }

    /// Finalize.
    pub fn build(self) -> Result<Relation> {
        let fields = self
            .columns
            .iter()
            .map(|(n, t)| crate::schema::Field::new(self.qualifier.clone(), n.clone(), *t))
            .collect();
        let schema = Schema::new(fields);
        Relation::new(
            schema,
            self.rows
                .into_iter()
                .map(|r| r.into_boxed_slice())
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::DataType;

    fn rel(rows: Vec<Vec<Value>>) -> Relation {
        RelationBuilder::new("T")
            .column("a", DataType::Int)
            .column("b", DataType::Int)
            .rows(rows)
            .build()
            .unwrap()
    }

    #[test]
    fn arity_checked() {
        let schema = Schema::qualified("T", &[("a", DataType::Int)]);
        let bad = Relation::new(
            schema,
            vec![vec![Value::Int(1), Value::Int(2)].into_boxed_slice()],
        );
        assert!(matches!(bad, Err(Error::ArityMismatch { .. })));
    }

    #[test]
    fn multiset_eq_ignores_order_but_counts_duplicates() {
        let a = rel(vec![
            vec![1.into(), 2.into()],
            vec![3.into(), 4.into()],
            vec![1.into(), 2.into()],
        ]);
        let b = rel(vec![
            vec![3.into(), 4.into()],
            vec![1.into(), 2.into()],
            vec![1.into(), 2.into()],
        ]);
        let c = rel(vec![
            vec![3.into(), 4.into()],
            vec![1.into(), 2.into()],
            vec![3.into(), 4.into()],
        ]);
        assert!(a.multiset_eq(&b));
        assert!(!a.multiset_eq(&c));
    }

    #[test]
    fn rename_preserves_rows() {
        let a = rel(vec![vec![1.into(), 2.into()]]);
        let b = a.renamed("X");
        assert_eq!(b.schema().field(0).qualifier, "X");
        assert!(a.multiset_eq(&b));
    }

    #[test]
    fn display_renders_table() {
        let a = rel(vec![vec![1.into(), Value::Null]]);
        let s = a.to_string();
        assert!(s.contains("T.a"));
        assert!(s.contains("NULL"));
        assert!(s.contains("(1 rows)"));
    }

    #[test]
    fn row_view_round_trips_through_columns() {
        let mixed = RelationBuilder::new("M")
            .column("i", DataType::Int)
            .column("s", DataType::Str)
            .column("f", DataType::Float)
            .row(vec![1.into(), "a".into(), 1.5.into()])
            .row(vec![Value::Null, "b".into(), Value::Null])
            .row(vec![3.into(), Value::Null, 2.5.into()])
            .build()
            .unwrap();
        let rows = mixed.rows().to_vec();
        let rebuilt = Relation::new(Arc::clone(mixed.schema()), rows).unwrap();
        assert!(mixed.multiset_eq(&rebuilt));
        assert_eq!(mixed.into_rows().len(), 3);
    }

    #[test]
    fn clones_and_renames_share_the_columnar_body() {
        let a = rel(vec![vec![1.into(), 2.into()], vec![3.into(), 4.into()]]);
        let b = a.clone();
        let c = a.renamed("X");
        assert!(std::ptr::eq(a.cols(), b.cols()));
        assert!(std::ptr::eq(a.cols(), c.cols()));
    }
}
