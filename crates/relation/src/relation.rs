//! Multiset relations (SQL bag semantics).

use std::fmt;
use std::sync::Arc;

use crate::error::{Error, Result};
use crate::schema::Schema;
use crate::value::Value;

/// A tuple is a boxed slice of values, positionally aligned with a
/// [`Schema`].
pub type Tuple = Box<[Value]>;

/// An in-memory multiset of tuples over a schema.
///
/// SQL relations are bags, not sets; duplicate elimination is an explicit
/// operator ([`crate::ops::distinct`]). All operators in this workspace
/// preserve multiset semantics.
#[derive(Debug, Clone)]
pub struct Relation {
    schema: Arc<Schema>,
    rows: Vec<Tuple>,
}

impl Relation {
    /// Construct from parts, validating tuple arity.
    pub fn new(schema: Arc<Schema>, rows: Vec<Tuple>) -> Result<Self> {
        for row in &rows {
            if row.len() != schema.len() {
                return Err(Error::ArityMismatch {
                    expected: schema.len(),
                    actual: row.len(),
                });
            }
        }
        Ok(Relation { schema, rows })
    }

    /// Construct without validation. Callers must guarantee arity; this is
    /// the hot path used by operators that build rows against a known
    /// schema.
    pub fn from_parts(schema: Arc<Schema>, rows: Vec<Tuple>) -> Self {
        debug_assert!(rows.iter().all(|r| r.len() == schema.len()));
        Relation { schema, rows }
    }

    /// The empty relation over a schema.
    pub fn empty(schema: Arc<Schema>) -> Self {
        Relation {
            schema,
            rows: Vec::new(),
        }
    }

    /// Schema accessor.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Row accessor.
    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    /// Number of tuples (with duplicates).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when there are no tuples.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Consume into rows.
    pub fn into_rows(self) -> Vec<Tuple> {
        self.rows
    }

    /// Re-qualify every attribute: the paper's renaming `Flow → F`.
    pub fn renamed(&self, qualifier: &str) -> Relation {
        Relation {
            schema: self.schema.with_qualifier(qualifier),
            rows: self.rows.clone(),
        }
    }

    /// Re-qualify without cloning rows.
    pub fn into_renamed(self, qualifier: &str) -> Relation {
        Relation {
            schema: self.schema.with_qualifier(qualifier),
            rows: self.rows,
        }
    }

    /// Multiset equality irrespective of row order: both relations are
    /// sorted under the total value order and compared. Schemas must have
    /// the same arity; qualifiers are ignored (derived plans produce
    /// differently-qualified but equivalent outputs).
    pub fn multiset_eq(&self, other: &Relation) -> bool {
        if self.schema.len() != other.schema.len() || self.rows.len() != other.rows.len() {
            return false;
        }
        let mut a: Vec<&Tuple> = self.rows.iter().collect();
        let mut b: Vec<&Tuple> = other.rows.iter().collect();
        let cmp = |x: &&Tuple, y: &&Tuple| {
            for (u, v) in x.iter().zip(y.iter()) {
                let o = u.total_cmp(v);
                if o != std::cmp::Ordering::Equal {
                    return o;
                }
            }
            std::cmp::Ordering::Equal
        };
        a.sort_by(cmp);
        b.sort_by(cmp);
        a.iter()
            .zip(b.iter())
            .all(|(x, y)| cmp(x, y) == std::cmp::Ordering::Equal)
    }

    /// Rows sorted under the total order — deterministic output for
    /// examples and golden tests.
    pub fn sorted_rows(&self) -> Vec<Tuple> {
        let mut rows = self.rows.clone();
        rows.sort_by(|x, y| {
            for (u, v) in x.iter().zip(y.iter()) {
                let o = u.total_cmp(v);
                if o != std::cmp::Ordering::Equal {
                    return o;
                }
            }
            std::cmp::Ordering::Equal
        });
        rows
    }
}

impl fmt::Display for Relation {
    /// Render as an aligned ASCII table (used by the examples).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let headers: Vec<String> = self.schema.qualified_names();
        let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(|v| v.to_string()).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let rule = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            write!(f, "+")?;
            for w in &widths {
                write!(f, "{}+", "-".repeat(w + 2))?;
            }
            writeln!(f)
        };
        rule(f)?;
        write!(f, "|")?;
        for (h, w) in headers.iter().zip(&widths) {
            write!(f, " {h:<w$} |")?;
        }
        writeln!(f)?;
        rule(f)?;
        for row in &rendered {
            write!(f, "|")?;
            for (c, w) in row.iter().zip(&widths) {
                write!(f, " {c:<w$} |")?;
            }
            writeln!(f)?;
        }
        rule(f)?;
        writeln!(f, "({} rows)", self.rows.len())
    }
}

/// Ergonomic construction of small relations for tests and examples.
///
/// ```
/// use gmdj_relation::{RelationBuilder, DataType};
/// let hours = RelationBuilder::new("H")
///     .column("HourDsc", DataType::Int)
///     .column("StartInterval", DataType::Int)
///     .column("EndInterval", DataType::Int)
///     .row(vec![1.into(), 0.into(), 60.into()])
///     .row(vec![2.into(), 61.into(), 120.into()])
///     .build()
///     .unwrap();
/// assert_eq!(hours.len(), 2);
/// ```
pub struct RelationBuilder {
    qualifier: String,
    columns: Vec<(String, crate::schema::DataType)>,
    rows: Vec<Vec<Value>>,
}

impl RelationBuilder {
    /// Start a builder; every column will carry `qualifier`.
    pub fn new(qualifier: impl Into<String>) -> Self {
        RelationBuilder {
            qualifier: qualifier.into(),
            columns: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Append a column.
    pub fn column(mut self, name: impl Into<String>, dt: crate::schema::DataType) -> Self {
        self.columns.push((name.into(), dt));
        self
    }

    /// Append a row.
    pub fn row(mut self, values: Vec<Value>) -> Self {
        self.rows.push(values);
        self
    }

    /// Append many rows.
    pub fn rows(mut self, rows: impl IntoIterator<Item = Vec<Value>>) -> Self {
        self.rows.extend(rows);
        self
    }

    /// Finalize.
    pub fn build(self) -> Result<Relation> {
        let fields = self
            .columns
            .iter()
            .map(|(n, t)| crate::schema::Field::new(self.qualifier.clone(), n.clone(), *t))
            .collect();
        let schema = Schema::new(fields);
        Relation::new(
            schema,
            self.rows
                .into_iter()
                .map(|r| r.into_boxed_slice())
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::DataType;

    fn rel(rows: Vec<Vec<Value>>) -> Relation {
        RelationBuilder::new("T")
            .column("a", DataType::Int)
            .column("b", DataType::Int)
            .rows(rows)
            .build()
            .unwrap()
    }

    #[test]
    fn arity_checked() {
        let schema = Schema::qualified("T", &[("a", DataType::Int)]);
        let bad = Relation::new(
            schema,
            vec![vec![Value::Int(1), Value::Int(2)].into_boxed_slice()],
        );
        assert!(matches!(bad, Err(Error::ArityMismatch { .. })));
    }

    #[test]
    fn multiset_eq_ignores_order_but_counts_duplicates() {
        let a = rel(vec![
            vec![1.into(), 2.into()],
            vec![3.into(), 4.into()],
            vec![1.into(), 2.into()],
        ]);
        let b = rel(vec![
            vec![3.into(), 4.into()],
            vec![1.into(), 2.into()],
            vec![1.into(), 2.into()],
        ]);
        let c = rel(vec![
            vec![3.into(), 4.into()],
            vec![1.into(), 2.into()],
            vec![3.into(), 4.into()],
        ]);
        assert!(a.multiset_eq(&b));
        assert!(!a.multiset_eq(&c));
    }

    #[test]
    fn rename_preserves_rows() {
        let a = rel(vec![vec![1.into(), 2.into()]]);
        let b = a.renamed("X");
        assert_eq!(b.schema().field(0).qualifier, "X");
        assert!(a.multiset_eq(&b));
    }

    #[test]
    fn display_renders_table() {
        let a = rel(vec![vec![1.into(), Value::Null]]);
        let s = a.to_string();
        assert!(s.contains("T.a"));
        assert!(s.contains("NULL"));
        assert!(s.contains("(1 rows)"));
    }
}
