//! Probe-side indexes used by hash joins and the GMDJ evaluator.
//!
//! The GMDJ evaluation strategy in the paper keeps the base-values relation
//! in memory and streams the detail relation past it; per detail tuple it
//! must find the base tuples whose θ-condition can match. Two access paths
//! cover the conditions that occur in practice:
//!
//! * [`HashIndex`] — equality conjuncts `B.x = R.y` (correlation
//!   predicates). "The indexing mechanism intrinsic to GMDJ evaluation"
//!   ([2] in the paper).
//! * [`IntervalIndex`] — band conjuncts `B.lo ≤ R.t < B.hi` (the Hours
//!   dimension of the motivating example).

use crate::fxhash::FxHashMap;
use crate::relation::Relation;
use crate::value::Value;

/// A multiset key: values compare with grouping equality (NULL = NULL).
pub type Key = Box<[Value]>;

/// Extract a key from a tuple given column positions.
#[inline]
pub fn key_of(row: &[Value], cols: &[usize]) -> Key {
    cols.iter().map(|&c| row[c].clone()).collect()
}

/// True if any component of the key is NULL. Equality conjuncts cannot
/// match NULL keys (the comparison would be unknown), so probe sides skip
/// them.
#[inline]
pub fn key_has_null(key: &[Value]) -> bool {
    key.iter().any(Value::is_null)
}

/// Hash index from key columns of a relation to row positions.
#[derive(Debug, Clone)]
pub struct HashIndex {
    map: FxHashMap<Key, Vec<u32>>,
    len: usize,
}

impl HashIndex {
    /// Build over `relation`, keying on `cols`. Rows with a NULL key
    /// component are excluded: no equality probe can ever match them.
    pub fn build(relation: &Relation, cols: &[usize]) -> Self {
        Self::build_rows(relation.rows().iter().map(|r| r.as_ref()), cols)
    }

    /// Build from raw rows.
    pub fn build_rows<'a>(rows: impl Iterator<Item = &'a [Value]>, cols: &[usize]) -> Self {
        let mut map: FxHashMap<Key, Vec<u32>> = FxHashMap::default();
        let mut len = 0usize;
        for (i, row) in rows.enumerate() {
            len += 1;
            let key = key_of(row, cols);
            if key_has_null(&key) {
                continue;
            }
            map.entry(key).or_default().push(i as u32);
        }
        HashIndex { map, len }
    }

    /// Row positions matching a probe key. NULL keys match nothing.
    #[inline]
    pub fn probe(&self, key: &[Value]) -> &[u32] {
        if key_has_null(key) {
            return &[];
        }
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    /// Number of rows indexed over (including NULL-key rows).
    pub fn source_len(&self) -> usize {
        self.len
    }
}

/// Sorted interval index for band conditions `lo ≤ t (< or ≤) hi`.
///
/// Entries are sorted by `lo`; a stab query binary-searches the last entry
/// with `lo ≤ t` and scans left while intervals can still cover `t`, using
/// a running maximum of `hi` to stop early. For non-overlapping intervals
/// (time dimensions like Hours) a stab is O(log n + answers).
#[derive(Debug, Clone)]
pub struct IntervalIndex {
    /// (lo, hi, row) sorted by lo.
    entries: Vec<(f64, f64, u32)>,
    /// prefix_max_hi[i] = max of entries[0..=i].hi — allows early exit.
    prefix_max_hi: Vec<f64>,
    /// Whether the upper bound is inclusive (`t ≤ hi`) or exclusive
    /// (`t < hi`).
    hi_inclusive: bool,
}

impl IntervalIndex {
    /// Build from `(lo, hi)` pairs per row; rows with NULL bounds are
    /// excluded (their band condition is unknown for every t).
    pub fn build(bounds: impl Iterator<Item = (Value, Value)>, hi_inclusive: bool) -> Self {
        let mut entries: Vec<(f64, f64, u32)> = Vec::new();
        for (i, (lo, hi)) in bounds.enumerate() {
            if let (Some(lo), Some(hi)) = (lo.as_f64(), hi.as_f64()) {
                entries.push((lo, hi, i as u32));
            }
        }
        entries.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut prefix_max_hi = Vec::with_capacity(entries.len());
        let mut running = f64::NEG_INFINITY;
        for e in &entries {
            running = running.max(e.1);
            prefix_max_hi.push(running);
        }
        IntervalIndex {
            entries,
            prefix_max_hi,
            hi_inclusive,
        }
    }

    /// Rows whose interval contains `t`.
    pub fn stab(&self, t: &Value, out: &mut Vec<u32>) {
        out.clear();
        let Some(t) = t.as_f64() else { return };
        // Last index with lo <= t.
        let mut hi_idx = self.entries.partition_point(|e| e.0 <= t);
        while hi_idx > 0 {
            hi_idx -= 1;
            // If no interval at or before hi_idx can reach t, stop.
            if self.prefix_max_hi[hi_idx] < t
                || (!self.hi_inclusive && self.prefix_max_hi[hi_idx] <= t)
            {
                break;
            }
            let (_, hi, row) = self.entries[hi_idx];
            let covered = if self.hi_inclusive { t <= hi } else { t < hi };
            if covered {
                out.push(row);
            }
        }
    }

    /// Number of indexed intervals.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no intervals are indexed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::RelationBuilder;
    use crate::schema::DataType;

    #[test]
    fn hash_index_probes() {
        let r = RelationBuilder::new("T")
            .column("k", DataType::Int)
            .column("v", DataType::Int)
            .row(vec![1.into(), 10.into()])
            .row(vec![2.into(), 20.into()])
            .row(vec![1.into(), 30.into()])
            .row(vec![Value::Null, 40.into()])
            .build()
            .unwrap();
        let idx = HashIndex::build(&r, &[0]);
        assert_eq!(idx.probe(&[Value::Int(1)]), &[0, 2]);
        assert_eq!(idx.probe(&[Value::Int(2)]), &[1]);
        assert_eq!(idx.probe(&[Value::Int(9)]), &[] as &[u32]);
        // NULL probes and NULL build keys never match.
        assert_eq!(idx.probe(&[Value::Null]), &[] as &[u32]);
        assert_eq!(idx.distinct_keys(), 2);
    }

    #[test]
    fn interval_index_stabs_non_overlapping() {
        // Hours-style: [0,60), [61,120), [121,180)
        let idx = IntervalIndex::build(
            vec![
                (Value::Int(0), Value::Int(60)),
                (Value::Int(61), Value::Int(120)),
                (Value::Int(121), Value::Int(180)),
            ]
            .into_iter(),
            false,
        );
        let mut out = Vec::new();
        idx.stab(&Value::Int(43), &mut out);
        assert_eq!(out, vec![0]);
        idx.stab(&Value::Int(60), &mut out);
        assert!(out.is_empty()); // exclusive upper bound
        idx.stab(&Value::Int(61), &mut out);
        assert_eq!(out, vec![1]);
        idx.stab(&Value::Int(500), &mut out);
        assert!(out.is_empty());
        idx.stab(&Value::Null, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn interval_index_overlapping() {
        let idx = IntervalIndex::build(
            vec![
                (Value::Int(0), Value::Int(100)),
                (Value::Int(10), Value::Int(20)),
                (Value::Int(15), Value::Int(50)),
            ]
            .into_iter(),
            true,
        );
        let mut out = Vec::new();
        idx.stab(&Value::Int(18), &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![0, 1, 2]);
        idx.stab(&Value::Int(60), &mut out);
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn interval_index_skips_null_bounds() {
        let idx = IntervalIndex::build(
            vec![
                (Value::Null, Value::Int(10)),
                (Value::Int(0), Value::Int(10)),
            ]
            .into_iter(),
            false,
        );
        assert_eq!(idx.len(), 1);
    }
}
