//! Probe-side indexes used by hash joins and the GMDJ evaluator.
//!
//! The GMDJ evaluation strategy in the paper keeps the base-values relation
//! in memory and streams the detail relation past it; per detail tuple it
//! must find the base tuples whose θ-condition can match. Two access paths
//! cover the conditions that occur in practice:
//!
//! * [`HashIndex`] — equality conjuncts `B.x = R.y` (correlation
//!   predicates). "The indexing mechanism intrinsic to GMDJ evaluation"
//!   ([2] in the paper).
//! * [`IntervalIndex`] — band conjuncts `B.lo ≤ R.t < B.hi` (the Hours
//!   dimension of the motivating example).

use crate::fxhash::FxHashMap;
use crate::relation::Relation;
use crate::value::Value;

/// A multiset key: values compare with grouping equality (NULL = NULL).
pub type Key = Box<[Value]>;

/// Extract a key from a tuple given column positions.
#[inline]
pub fn key_of(row: &[Value], cols: &[usize]) -> Key {
    cols.iter().map(|&c| row[c].clone()).collect()
}

/// True if any component of the key is NULL. Equality conjuncts cannot
/// match NULL keys (the comparison would be unknown), so probe sides skip
/// them.
#[inline]
pub fn key_has_null(key: &[Value]) -> bool {
    key.iter().any(Value::is_null)
}

/// Hash index from key columns of a relation to row positions.
#[derive(Debug, Clone)]
pub struct HashIndex {
    map: FxHashMap<Key, Vec<u32>>,
    len: usize,
}

impl HashIndex {
    /// Build over `relation`, keying on `cols`. Rows with a NULL key
    /// component are excluded: no equality probe can ever match them.
    pub fn build(relation: &Relation, cols: &[usize]) -> Self {
        Self::build_rows(relation.rows().iter().map(|r| r.as_ref()), cols)
    }

    /// Build from raw rows.
    pub fn build_rows<'a>(rows: impl Iterator<Item = &'a [Value]>, cols: &[usize]) -> Self {
        let mut map: FxHashMap<Key, Vec<u32>> = FxHashMap::default();
        let mut len = 0usize;
        for (i, row) in rows.enumerate() {
            len += 1;
            let key = key_of(row, cols);
            if key_has_null(&key) {
                continue;
            }
            map.entry(key).or_default().push(i as u32);
        }
        HashIndex { map, len }
    }

    /// Row positions matching a probe key. NULL keys match nothing.
    #[inline]
    pub fn probe(&self, key: &[Value]) -> &[u32] {
        if key_has_null(key) {
            return &[];
        }
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    /// Number of rows indexed over (including NULL-key rows).
    pub fn source_len(&self) -> usize {
        self.len
    }
}

/// String-key buckets keyed by precomputed Fx hash code: each bucket
/// holds `(key, row positions)` pairs, collisions resolved by byte
/// compare.
type StrBuckets = FxHashMap<u64, Vec<(std::sync::Arc<str>, Vec<u32>)>>;

/// Typed single-column sidecar for a [`HashIndex`]: when every non-NULL
/// key in the base relation is the same primitive type, probes from a
/// matching typed batch column skip `Value` construction entirely.
///
/// Semantics note: [`Value`] equality treats `Int(1)` and `Float(1.0)` as
/// equal, so a typed `Int` sidecar is only built when *no* key is a float;
/// a probe from a non-matching column type must use the generic
/// [`HashIndex::probe`] path, which preserves cross-type equality.
#[derive(Debug, Clone)]
pub enum TypedKeyIndex {
    /// All non-NULL keys are `Int`.
    Int(FxHashMap<i64, Vec<u32>>),
    /// All non-NULL keys are `Str`, bucketed by precomputed Fx hash code
    /// ([`crate::fxhash::hash_str`]); collisions resolve by byte compare.
    Str(StrBuckets),
}

impl TypedKeyIndex {
    /// Build over a single key column, or `None` when the column mixes
    /// types (including Int/Float mixes) or holds floats/bools.
    pub fn build_rows<'a>(rows: impl Iterator<Item = &'a [Value]>, col: usize) -> Option<Self> {
        enum B {
            Unknown,
            Int(FxHashMap<i64, Vec<u32>>),
            Str(StrBuckets),
        }
        let mut b = B::Unknown;
        for (i, row) in rows.enumerate() {
            match &row[col] {
                Value::Null => continue,
                Value::Int(k) => match &mut b {
                    B::Unknown => {
                        let mut m: FxHashMap<i64, Vec<u32>> = FxHashMap::default();
                        m.entry(*k).or_default().push(i as u32);
                        b = B::Int(m);
                    }
                    B::Int(m) => m.entry(*k).or_default().push(i as u32),
                    B::Str(_) => return None,
                },
                Value::Str(s) => {
                    let h = crate::fxhash::hash_str(s);
                    let push = |m: &mut StrBuckets| {
                        let bucket = m.entry(h).or_default();
                        match bucket.iter_mut().find(|(v, _)| v.as_ref() == s.as_ref()) {
                            Some((_, rows)) => rows.push(i as u32),
                            None => bucket.push((std::sync::Arc::clone(s), vec![i as u32])),
                        }
                    };
                    match &mut b {
                        B::Unknown => {
                            let mut m = FxHashMap::default();
                            push(&mut m);
                            b = B::Str(m);
                        }
                        B::Str(m) => push(m),
                        B::Int(_) => return None,
                    }
                }
                // Float keys would need cross-type Int equality; Bool keys
                // are rare enough that the generic path suffices.
                Value::Float(_) | Value::Bool(_) => return None,
            }
        }
        match b {
            B::Unknown => None,
            B::Int(m) => Some(TypedKeyIndex::Int(m)),
            B::Str(m) => Some(TypedKeyIndex::Str(m)),
        }
    }

    /// Row positions for an integer probe key.
    #[inline]
    pub fn probe_int(&self, k: i64) -> &[u32] {
        match self {
            TypedKeyIndex::Int(m) => m.get(&k).map(Vec::as_slice).unwrap_or(&[]),
            TypedKeyIndex::Str(_) => &[],
        }
    }

    /// Row positions for a string probe with its precomputed hash code.
    #[inline]
    pub fn probe_str(&self, hash: u64, s: &str) -> &[u32] {
        match self {
            TypedKeyIndex::Str(m) => m
                .get(&hash)
                .and_then(|bucket| bucket.iter().find(|(v, _)| v.as_ref() == s))
                .map(|(_, rows)| rows.as_slice())
                .unwrap_or(&[]),
            TypedKeyIndex::Int(_) => &[],
        }
    }
}

/// Sorted interval index for band conditions `lo ≤ t (< or ≤) hi`.
///
/// Entries are sorted by `lo`; a stab query binary-searches the last entry
/// with `lo ≤ t` and scans left while intervals can still cover `t`, using
/// a running maximum of `hi` to stop early. For non-overlapping intervals
/// (time dimensions like Hours) a stab is O(log n + answers).
#[derive(Debug, Clone)]
pub struct IntervalIndex {
    /// (lo, hi, row) sorted by lo.
    entries: Vec<(f64, f64, u32)>,
    /// prefix_max_hi[i] = max of entries[0..=i].hi — allows early exit.
    prefix_max_hi: Vec<f64>,
    /// Whether the upper bound is inclusive (`t ≤ hi`) or exclusive
    /// (`t < hi`).
    hi_inclusive: bool,
}

impl IntervalIndex {
    /// Build from `(lo, hi)` pairs per row; rows with NULL bounds are
    /// excluded (their band condition is unknown for every t).
    pub fn build(bounds: impl Iterator<Item = (Value, Value)>, hi_inclusive: bool) -> Self {
        let mut entries: Vec<(f64, f64, u32)> = Vec::new();
        for (i, (lo, hi)) in bounds.enumerate() {
            if let (Some(lo), Some(hi)) = (lo.as_f64(), hi.as_f64()) {
                entries.push((lo, hi, i as u32));
            }
        }
        entries.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut prefix_max_hi = Vec::with_capacity(entries.len());
        let mut running = f64::NEG_INFINITY;
        for e in &entries {
            running = running.max(e.1);
            prefix_max_hi.push(running);
        }
        IntervalIndex {
            entries,
            prefix_max_hi,
            hi_inclusive,
        }
    }

    /// Rows whose interval contains `t`.
    pub fn stab(&self, t: &Value, out: &mut Vec<u32>) {
        out.clear();
        let Some(t) = t.as_f64() else { return };
        self.stab_f64(t, out);
    }

    /// [`stab`](Self::stab) with the probe value already widened to `f64` —
    /// the batched scan calls this directly from typed Int/Float columns
    /// without constructing a `Value`.
    pub fn stab_f64(&self, t: f64, out: &mut Vec<u32>) {
        out.clear();
        // Last index with lo <= t.
        let mut hi_idx = self.entries.partition_point(|e| e.0 <= t);
        while hi_idx > 0 {
            hi_idx -= 1;
            // If no interval at or before hi_idx can reach t, stop.
            if self.prefix_max_hi[hi_idx] < t
                || (!self.hi_inclusive && self.prefix_max_hi[hi_idx] <= t)
            {
                break;
            }
            let (_, hi, row) = self.entries[hi_idx];
            let covered = if self.hi_inclusive { t <= hi } else { t < hi };
            if covered {
                out.push(row);
            }
        }
    }

    /// Number of indexed intervals.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no intervals are indexed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::RelationBuilder;
    use crate::schema::DataType;

    #[test]
    fn hash_index_probes() {
        let r = RelationBuilder::new("T")
            .column("k", DataType::Int)
            .column("v", DataType::Int)
            .row(vec![1.into(), 10.into()])
            .row(vec![2.into(), 20.into()])
            .row(vec![1.into(), 30.into()])
            .row(vec![Value::Null, 40.into()])
            .build()
            .unwrap();
        let idx = HashIndex::build(&r, &[0]);
        assert_eq!(idx.probe(&[Value::Int(1)]), &[0, 2]);
        assert_eq!(idx.probe(&[Value::Int(2)]), &[1]);
        assert_eq!(idx.probe(&[Value::Int(9)]), &[] as &[u32]);
        // NULL probes and NULL build keys never match.
        assert_eq!(idx.probe(&[Value::Null]), &[] as &[u32]);
        assert_eq!(idx.distinct_keys(), 2);
    }

    #[test]
    fn interval_index_stabs_non_overlapping() {
        // Hours-style: [0,60), [61,120), [121,180)
        let idx = IntervalIndex::build(
            vec![
                (Value::Int(0), Value::Int(60)),
                (Value::Int(61), Value::Int(120)),
                (Value::Int(121), Value::Int(180)),
            ]
            .into_iter(),
            false,
        );
        let mut out = Vec::new();
        idx.stab(&Value::Int(43), &mut out);
        assert_eq!(out, vec![0]);
        idx.stab(&Value::Int(60), &mut out);
        assert!(out.is_empty()); // exclusive upper bound
        idx.stab(&Value::Int(61), &mut out);
        assert_eq!(out, vec![1]);
        idx.stab(&Value::Int(500), &mut out);
        assert!(out.is_empty());
        idx.stab(&Value::Null, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn interval_index_overlapping() {
        let idx = IntervalIndex::build(
            vec![
                (Value::Int(0), Value::Int(100)),
                (Value::Int(10), Value::Int(20)),
                (Value::Int(15), Value::Int(50)),
            ]
            .into_iter(),
            true,
        );
        let mut out = Vec::new();
        idx.stab(&Value::Int(18), &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![0, 1, 2]);
        idx.stab(&Value::Int(60), &mut out);
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn typed_int_sidecar_matches_generic_probe() {
        let rows: Vec<Vec<Value>> = vec![
            vec![Value::Int(1)],
            vec![Value::Int(2)],
            vec![Value::Null],
            vec![Value::Int(1)],
        ];
        let idx = TypedKeyIndex::build_rows(rows.iter().map(|r| r.as_slice()), 0)
            .expect("all-Int keys build a typed sidecar");
        assert_eq!(idx.probe_int(1), &[0, 3]);
        assert_eq!(idx.probe_int(2), &[1]);
        assert_eq!(idx.probe_int(9), &[] as &[u32]);
    }

    #[test]
    fn typed_sidecar_rejects_mixed_and_float_keys() {
        let mixed: Vec<Vec<Value>> = vec![vec![Value::Int(1)], vec![Value::Str("a".into())]];
        assert!(TypedKeyIndex::build_rows(mixed.iter().map(|r| r.as_slice()), 0).is_none());
        // Float(1.0) equals Int(1) under Value equality; a typed Int map
        // cannot represent that, so floats force the generic path.
        let floats: Vec<Vec<Value>> = vec![vec![Value::Float(1.0)]];
        assert!(TypedKeyIndex::build_rows(floats.iter().map(|r| r.as_slice()), 0).is_none());
    }

    #[test]
    fn typed_str_sidecar_probes_by_prehashed_code() {
        use crate::fxhash::hash_str;
        let rows: Vec<Vec<Value>> = vec![
            vec![Value::Str("ny".into())],
            vec![Value::Str("sf".into())],
            vec![Value::Str("ny".into())],
        ];
        let idx = TypedKeyIndex::build_rows(rows.iter().map(|r| r.as_slice()), 0).unwrap();
        assert_eq!(idx.probe_str(hash_str("ny"), "ny"), &[0, 2]);
        assert_eq!(idx.probe_str(hash_str("sf"), "sf"), &[1]);
        assert_eq!(idx.probe_str(hash_str("la"), "la"), &[] as &[u32]);
    }

    #[test]
    fn stab_f64_matches_value_stab() {
        let idx = IntervalIndex::build(
            vec![
                (Value::Int(0), Value::Int(60)),
                (Value::Int(30), Value::Int(90)),
            ]
            .into_iter(),
            false,
        );
        let (mut a, mut b) = (Vec::new(), Vec::new());
        idx.stab(&Value::Int(45), &mut a);
        idx.stab_f64(45.0, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn interval_index_skips_null_bounds() {
        let idx = IntervalIndex::build(
            vec![
                (Value::Null, Value::Int(10)),
                (Value::Int(0), Value::Int(10)),
            ]
            .into_iter(),
            false,
        );
        assert_eq!(idx.len(), 1);
    }
}
