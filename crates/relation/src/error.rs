//! Error handling for the relational substrate.

use std::fmt;

/// Result alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised by schema resolution, expression binding, and operator
/// evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// An attribute reference did not resolve against the schemas in scope.
    UnknownColumn {
        /// The reference as written (possibly qualified).
        name: String,
        /// The columns that were in scope, for diagnostics.
        in_scope: Vec<String>,
    },
    /// An unqualified attribute reference resolved to more than one column.
    AmbiguousColumn {
        name: String,
        candidates: Vec<String>,
    },
    /// Two schemas produced a duplicate qualified attribute name.
    DuplicateColumn { name: String },
    /// A scalar operation was applied to incompatible run-time types.
    TypeMismatch {
        context: String,
        left: String,
        right: String,
    },
    /// A scalar subquery (or scalar-producing operator) returned more than
    /// one row where exactly one was required.
    CardinalityViolation { context: String, rows: usize },
    /// Schema arity did not match tuple arity when constructing a relation.
    ArityMismatch { expected: usize, actual: usize },
    /// A catalog lookup failed.
    UnknownTable { name: String },
    /// Anything else: malformed plan, unsupported construct, etc.
    Invalid(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownColumn { name, in_scope } => {
                write!(
                    f,
                    "unknown column `{name}`; in scope: {}",
                    in_scope.join(", ")
                )
            }
            Error::AmbiguousColumn { name, candidates } => {
                write!(
                    f,
                    "ambiguous column `{name}`; candidates: {}",
                    candidates.join(", ")
                )
            }
            Error::DuplicateColumn { name } => write!(f, "duplicate column name `{name}`"),
            Error::TypeMismatch {
                context,
                left,
                right,
            } => {
                write!(f, "type mismatch in {context}: {left} vs {right}")
            }
            Error::CardinalityViolation { context, rows } => {
                write!(
                    f,
                    "scalar expression in {context} produced {rows} rows (expected at most 1)"
                )
            }
            Error::ArityMismatch { expected, actual } => {
                write!(
                    f,
                    "tuple arity {actual} does not match schema arity {expected}"
                )
            }
            Error::UnknownTable { name } => write!(f, "unknown table `{name}`"),
            Error::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for Error {}

impl Error {
    /// Convenience constructor for [`Error::Invalid`].
    pub fn invalid(msg: impl Into<String>) -> Self {
        Error::Invalid(msg.into())
    }
}
