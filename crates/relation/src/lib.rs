//! # gmdj-relation
//!
//! In-memory relational substrate for the GMDJ subquery engine.
//!
//! This crate implements everything a small analytical query processor needs
//! below the level of the GMDJ operator itself:
//!
//! * [`Value`] — dynamically typed SQL values with a first-class `NULL`, and
//!   [`Truth`] — SQL three-valued logic (3VL).
//! * [`Schema`] / [`Field`] — qualified attribute names (`F.StartTime`) with
//!   resolution rules matching an SQL scope.
//! * [`Relation`] — a multiset of tuples over a schema. Relations are
//!   multisets throughout, matching SQL bag semantics; `distinct` is an
//!   explicit operator.
//! * [`expr`] — scalar expressions and predicates. Logical expressions are
//!   *bound* against one or more schemas before evaluation, producing
//!   [`expr::BoundPredicate`] / [`expr::BoundScalar`] that evaluate against
//!   tuple slices without any name lookups on the hot path.
//! * [`agg`] — SQL aggregate functions (`COUNT`, `COUNT(*)`, `SUM`, `MIN`,
//!   `MAX`, `AVG`) with SQL NULL semantics via the [`agg::Accumulator`]
//!   state machine.
//! * [`ops`] — physical operators: selection, projection, distinct, rename,
//!   union all, multiset difference, cross product, θ-joins (hash and
//!   block-nested-loop), left outer / semi / anti joins, and hash group-by.
//! * [`index`] — hash equi-key indexes and sorted interval indexes used by
//!   joins and by the GMDJ evaluator in `gmdj-core`.
//! * [`batch`] — typed column vectors decoded from rows in fixed-size
//!   chunks, plus the vectorized comparison kernels the GMDJ detail scan
//!   dispatches to when a probe shape can be specialized.
//! * [`csv`] — RFC-4180-style import/export (schema-checked and
//!   schema-inferring).
//! * [`storage`] — paged relations behind an LRU buffer pool with
//!   logical/physical read counters, the paper's page-I/O cost model made
//!   executable.
//!
//! The substrate deliberately stays row-oriented and simple: the paper's
//! experiments are dominated by scan, probe, and predicate-evaluation costs,
//! all of which this representation models faithfully.

pub mod agg;
pub mod batch;
pub mod csv;
pub mod error;
pub mod expr;
pub mod fxhash;
pub mod index;
pub mod ops;
pub mod relation;
pub mod schema;
pub mod storage;
pub mod value;

pub use error::{Error, Result};
pub use relation::{Relation, RelationBuilder, Tuple};
pub use schema::{ColumnRef, DataType, Field, Schema};
pub use value::{Truth, Value};
