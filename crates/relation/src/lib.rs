//! # gmdj-relation
//!
//! In-memory relational substrate for the GMDJ subquery engine.
//!
//! This crate implements everything a small analytical query processor needs
//! below the level of the GMDJ operator itself:
//!
//! * [`Value`] — dynamically typed SQL values with a first-class `NULL`, and
//!   [`Truth`] — SQL three-valued logic (3VL).
//! * [`Schema`] / [`Field`] — qualified attribute names (`F.StartTime`) with
//!   resolution rules matching an SQL scope.
//! * [`Relation`] — a multiset of tuples over a schema. Relations are
//!   multisets throughout, matching SQL bag semantics; `distinct` is an
//!   explicit operator.
//! * [`expr`] — scalar expressions and predicates. Logical expressions are
//!   *bound* against one or more schemas before evaluation, producing
//!   [`expr::BoundPredicate`] / [`expr::BoundScalar`] that evaluate against
//!   tuple slices without any name lookups on the hot path.
//! * [`agg`] — SQL aggregate functions (`COUNT`, `COUNT(*)`, `SUM`, `MIN`,
//!   `MAX`, `AVG`) with SQL NULL semantics via the [`agg::Accumulator`]
//!   state machine.
//! * [`ops`] — physical operators: selection, projection, distinct, rename,
//!   union all, multiset difference, cross product, θ-joins (hash and
//!   block-nested-loop), left outer / semi / anti joins, and hash group-by.
//! * [`index`] — hash equi-key indexes and sorted interval indexes used by
//!   joins and by the GMDJ evaluator in `gmdj-core`.
//! * [`columnar`] — the native storage format: typed column vectors with
//!   validity bitmaps and dictionary-encoded strings, shared by `Arc`
//!   across clones and renames.
//! * [`batch`] — vectorized comparison kernels over borrowed windows of
//!   the stored columns, dispatched by the GMDJ detail scan whenever a
//!   probe shape can be specialized.
//! * [`csv`] — RFC-4180-style import/export (schema-checked and
//!   schema-inferring).
//! * [`storage`] — column-chunk paged relations behind a buffer pool
//!   (LRU, optionally scan-resistant) with logical/physical read counters,
//!   the paper's page-I/O cost model made executable.
//!
//! The substrate is natively columnar: the paper's experiments are
//! dominated by scan, probe, and predicate-evaluation costs, and the
//! vectorized kernels read storage directly with zero per-query decode.
//! Row-at-a-time tuples remain available as a late-materialization view
//! ([`Relation::rows`]) for the oracle paths, completion plans, and CSV
//! ingest.

pub mod agg;
pub mod batch;
pub mod columnar;
pub mod csv;
pub mod error;
pub mod expr;
pub mod fxhash;
pub mod index;
pub mod ops;
pub mod relation;
pub mod schema;
pub mod storage;
pub mod value;

pub use error::{Error, Result};
pub use relation::{Relation, RelationBuilder, Tuple};
pub use schema::{ColumnRef, DataType, Field, Schema};
pub use value::{Truth, Value};
