//! Dynamically typed SQL values and three-valued logic.
//!
//! The paper's correctness arguments (Theorem 3.1) hinge on SQL's NULL
//! semantics: comparison predicates over NULL evaluate to *unknown*, and
//! where-clause truncation discards tuples whose predicate is not *true*.
//! [`Value`] and [`Truth`] implement exactly those semantics.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::error::{Error, Result};
use crate::schema::DataType;

/// A run-time SQL value.
///
/// Cloning is cheap: strings are reference counted.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL. Participates in comparisons as *unknown* (see [`Truth`]).
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit IEEE float.
    Float(f64),
    /// Immutable UTF-8 string.
    Str(Arc<str>),
    /// Boolean (used for materialized predicate results).
    Bool(bool),
}

impl Value {
    /// Build a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// True iff this value is SQL NULL.
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The run-time type of this value, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
            Value::Bool(_) => Some(DataType::Bool),
        }
    }

    /// Interpret as `f64` for arithmetic/aggregation. Integers widen.
    #[inline]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Interpret as `i64` if integral.
    #[inline]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Interpret as string slice.
    #[inline]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// SQL comparison: returns [`Truth::Unknown`] if either side is NULL,
    /// and errors on genuinely incomparable run-time types (e.g. string vs
    /// int), which indicates a planning bug rather than a data condition.
    pub fn sql_cmp(&self, other: &Value) -> Result<Option<Ordering>> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => Ok(None),
            (Value::Int(a), Value::Int(b)) => Ok(Some(a.cmp(b))),
            (Value::Float(a), Value::Float(b)) => Ok(Some(total_cmp(*a, *b))),
            (Value::Int(a), Value::Float(b)) => Ok(Some(total_cmp(*a as f64, *b))),
            (Value::Float(a), Value::Int(b)) => Ok(Some(total_cmp(*a, *b as f64))),
            (Value::Str(a), Value::Str(b)) => Ok(Some(a.as_ref().cmp(b.as_ref()))),
            (Value::Bool(a), Value::Bool(b)) => Ok(Some(a.cmp(b))),
            (a, b) => Err(Error::TypeMismatch {
                context: "comparison".into(),
                left: format!("{a}"),
                right: format!("{b}"),
            }),
        }
    }

    /// Total ordering used for sorting output and for deterministic
    /// multiset comparison in tests. NULL sorts first; cross-type order is
    /// by type tag. This is *not* SQL comparison semantics.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn tag(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) => 2,
                Value::Float(_) => 2, // numeric types compare by value
                Value::Str(_) => 3,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => total_cmp(*a, *b),
            (Value::Int(a), Value::Float(b)) => total_cmp(*a as f64, *b),
            (Value::Float(a), Value::Int(b)) => total_cmp(*a, *b as f64),
            (Value::Str(a), Value::Str(b)) => a.as_ref().cmp(b.as_ref()),
            (a, b) => tag(a).cmp(&tag(b)),
        }
    }
}

#[inline]
fn total_cmp(a: f64, b: f64) -> Ordering {
    a.total_cmp(&b)
}

/// Grouping equality: NULLs compare equal to each other (SQL `GROUP BY`
/// semantics), floats compare by bit pattern via total order, and `1`
/// (Int) equals `1.0` (Float) so that mixed-type keys group naturally.
impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}
impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Ints and integral floats must hash alike because they compare
            // equal under `total_cmp`.
            Value::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Str(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// SQL three-valued logic.
///
/// Predicates evaluate to one of three truth values. *Where-clause
/// truncation* ([21] in the paper) keeps only tuples whose predicate is
/// [`Truth::True`]; both `False` and `Unknown` discard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Truth {
    True,
    False,
    Unknown,
}

impl Truth {
    /// Kleene conjunction.
    #[inline]
    pub fn and(self, other: Truth) -> Truth {
        match (self, other) {
            (Truth::False, _) | (_, Truth::False) => Truth::False,
            (Truth::True, Truth::True) => Truth::True,
            _ => Truth::Unknown,
        }
    }

    /// Kleene disjunction.
    #[inline]
    pub fn or(self, other: Truth) -> Truth {
        match (self, other) {
            (Truth::True, _) | (_, Truth::True) => Truth::True,
            (Truth::False, Truth::False) => Truth::False,
            _ => Truth::Unknown,
        }
    }

    /// Kleene negation: `NOT unknown = unknown`.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Truth {
        match self {
            Truth::True => Truth::False,
            Truth::False => Truth::True,
            Truth::Unknown => Truth::Unknown,
        }
    }

    /// Where-clause truncation: only `True` passes.
    #[inline]
    pub fn passes(self) -> bool {
        self == Truth::True
    }

    /// Lift a two-valued bool.
    #[inline]
    pub fn from_bool(b: bool) -> Truth {
        if b {
            Truth::True
        } else {
            Truth::False
        }
    }
}

impl fmt::Display for Truth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Truth::True => write!(f, "true"),
            Truth::False => write!(f, "false"),
            Truth::Unknown => write!(f, "unknown"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_comparisons_are_unknown() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)).unwrap(), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null).unwrap(), None);
        assert_eq!(Value::Null.sql_cmp(&Value::Null).unwrap(), None);
    }

    #[test]
    fn numeric_comparisons_coerce() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Float(2.0)).unwrap(),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Float(1.5).sql_cmp(&Value::Int(2)).unwrap(),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn incomparable_types_error() {
        assert!(Value::Int(1).sql_cmp(&Value::str("x")).is_err());
    }

    #[test]
    fn kleene_tables() {
        use Truth::*;
        // AND
        assert_eq!(True.and(True), True);
        assert_eq!(True.and(False), False);
        assert_eq!(True.and(Unknown), Unknown);
        assert_eq!(False.and(Unknown), False);
        assert_eq!(Unknown.and(Unknown), Unknown);
        // OR
        assert_eq!(False.or(False), False);
        assert_eq!(False.or(Unknown), Unknown);
        assert_eq!(True.or(Unknown), True);
        assert_eq!(Unknown.or(Unknown), Unknown);
        // NOT
        assert_eq!(Unknown.not(), Unknown);
        assert_eq!(True.not(), False);
    }

    #[test]
    fn where_truncation() {
        assert!(Truth::True.passes());
        assert!(!Truth::False.passes());
        assert!(!Truth::Unknown.passes());
    }

    #[test]
    fn group_equality_treats_null_as_equal() {
        assert_eq!(Value::Null, Value::Null);
        assert_ne!(Value::Null, Value::Int(0));
    }

    #[test]
    fn int_and_float_group_together() {
        use std::collections::hash_map::DefaultHasher;
        let mut h1 = DefaultHasher::new();
        let mut h2 = DefaultHasher::new();
        Value::Int(3).hash(&mut h1);
        Value::Float(3.0).hash(&mut h2);
        assert_eq!(Value::Int(3), Value::Float(3.0));
        assert_eq!(h1.finish(), h2.finish());
    }

    #[test]
    fn display_round_trip() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(-7).to_string(), "-7");
        assert_eq!(Value::str("HTTP").to_string(), "HTTP");
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
    }
}
