//! CSV import/export for relations.
//!
//! A minimal RFC-4180-style reader/writer (quoted fields, doubled-quote
//! escapes, CRLF tolerance) so generated datasets and query results can
//! leave and re-enter the engine. NULL is represented by the empty
//! unquoted field; the quoted empty string `""` is the empty string.

use std::io::{BufRead, Write};

use crate::error::{Error, Result};
use crate::relation::{Relation, Tuple};
use crate::schema::{DataType, Field, Schema};
use crate::value::Value;

/// Write a relation as CSV, header first (qualified column names).
pub fn write_csv(relation: &Relation, out: &mut dyn Write) -> Result<()> {
    let io_err = |e: std::io::Error| Error::invalid(format!("csv write: {e}"));
    let header: Vec<String> = relation
        .schema()
        .qualified_names()
        .iter()
        .map(|n| escape(n))
        .collect();
    writeln!(out, "{}", header.join(",")).map_err(io_err)?;
    for row in relation.rows() {
        let line: Vec<String> = row.iter().map(render_value).collect();
        writeln!(out, "{}", line.join(",")).map_err(io_err)?;
    }
    Ok(())
}

fn render_value(v: &Value) -> String {
    match v {
        Value::Null => String::new(),
        Value::Str(s) => escape(s),
        other => other.to_string(),
    }
}

fn escape(s: &str) -> String {
    if s.is_empty() || s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Read CSV against a known schema. The header row is validated against
/// the schema's column *names* (qualifiers are taken from the schema —
/// files written by [`write_csv`] round-trip).
pub fn read_csv(input: &mut dyn BufRead, schema: std::sync::Arc<Schema>) -> Result<Relation> {
    let mut lines = CsvRecords::new(input);
    let Some(header) = lines.next_record()? else {
        return Ok(Relation::empty(schema));
    };
    if header.len() != schema.len() {
        return Err(Error::ArityMismatch {
            expected: schema.len(),
            actual: header.len(),
        });
    }
    for (cell, field) in header.iter().zip(schema.fields()) {
        let name = cell.as_deref().unwrap_or("");
        if name != field.qualified_name() && name != field.name {
            return Err(Error::invalid(format!(
                "csv header `{name}` does not match column `{}`",
                field.qualified_name()
            )));
        }
    }
    let mut rows: Vec<Tuple> = Vec::new();
    while let Some(record) = lines.next_record()? {
        if record.len() != schema.len() {
            return Err(Error::ArityMismatch {
                expected: schema.len(),
                actual: record.len(),
            });
        }
        let row: Vec<Value> = record
            .into_iter()
            .zip(schema.fields())
            .map(|(cell, field)| parse_cell(cell, field))
            .collect::<Result<_>>()?;
        rows.push(row.into_boxed_slice());
    }
    Ok(Relation::from_parts(schema, rows))
}

/// Read CSV inferring the schema: a column is `Int` if every non-NULL
/// value parses as i64, else `Float` if every value parses as f64, else
/// `Str`. Header names may be qualified (`F.StartTime`) or bare.
pub fn read_csv_infer(input: &mut dyn BufRead, default_qualifier: &str) -> Result<Relation> {
    let mut records = CsvRecords::new(input);
    let Some(header) = records.next_record()? else {
        return Ok(Relation::empty(Schema::empty()));
    };
    let mut raw_rows: Vec<Vec<Option<String>>> = Vec::new();
    while let Some(r) = records.next_record()? {
        if r.len() != header.len() {
            return Err(Error::ArityMismatch {
                expected: header.len(),
                actual: r.len(),
            });
        }
        raw_rows.push(r);
    }
    // Infer per column. Only digit-leading text counts as numeric: `nan`,
    // `inf` and friends parse as f64 but are almost always labels.
    let looks_numeric = |cell: &str| {
        let rest = cell.strip_prefix(['-', '+']).unwrap_or(cell);
        rest.starts_with(|c: char| c.is_ascii_digit())
    };
    let mut types = vec![DataType::Int; header.len()];
    for (c, t) in types.iter_mut().enumerate() {
        let mut ty = DataType::Int;
        for row in &raw_rows {
            let Some(cell) = &row[c] else { continue };
            if ty == DataType::Int && (!looks_numeric(cell) || cell.parse::<i64>().is_err()) {
                ty = DataType::Float;
            }
            if ty == DataType::Float && (!looks_numeric(cell) || cell.parse::<f64>().is_err()) {
                ty = DataType::Str;
                break;
            }
        }
        *t = ty;
    }
    let fields: Vec<Field> = header
        .iter()
        .zip(&types)
        .map(|(h, t)| {
            let name = h.as_deref().unwrap_or("");
            match name.split_once('.') {
                Some((q, n)) => Field::new(q, n, *t),
                None => Field::new(default_qualifier, name, *t),
            }
        })
        .collect();
    let schema = Schema::new(fields);
    let rows: Vec<Tuple> = raw_rows
        .into_iter()
        .map(|row| {
            row.into_iter()
                .zip(schema.fields())
                .map(|(cell, field)| parse_cell(cell, field))
                .collect::<Result<Vec<Value>>>()
                .map(Vec::into_boxed_slice)
        })
        .collect::<Result<_>>()?;
    Ok(Relation::from_parts(schema, rows))
}

fn parse_cell(cell: Option<String>, field: &Field) -> Result<Value> {
    let Some(text) = cell else {
        return Ok(Value::Null);
    };
    match field.data_type {
        DataType::Int => text
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| bad_cell(&text, field)),
        DataType::Float => text
            .parse::<f64>()
            .map(Value::Float)
            .map_err(|_| bad_cell(&text, field)),
        DataType::Bool => match text.as_str() {
            "true" | "TRUE" | "1" => Ok(Value::Bool(true)),
            "false" | "FALSE" | "0" => Ok(Value::Bool(false)),
            _ => Err(bad_cell(&text, field)),
        },
        DataType::Str => Ok(Value::from(text)),
    }
}

fn bad_cell(text: &str, field: &Field) -> Error {
    Error::invalid(format!(
        "cannot parse `{text}` as {} for column {}",
        field.data_type,
        field.qualified_name()
    ))
}

/// Streaming record reader. A record cell is `None` for the unquoted
/// empty field (NULL) and `Some` otherwise.
struct CsvRecords<'a> {
    input: &'a mut dyn BufRead,
    buf: String,
}

impl<'a> CsvRecords<'a> {
    fn new(input: &'a mut dyn BufRead) -> Self {
        CsvRecords {
            input,
            buf: String::new(),
        }
    }

    fn next_record(&mut self) -> Result<Option<Vec<Option<String>>>> {
        self.buf.clear();
        let n = self
            .input
            .read_line(&mut self.buf)
            .map_err(|e| Error::invalid(format!("csv read: {e}")))?;
        if n == 0 {
            return Ok(None);
        }
        // A quoted field may contain raw newlines: keep reading lines
        // until the quotes balance.
        while self.buf.bytes().filter(|&b| b == b'"').count() % 2 == 1 {
            let more = self
                .input
                .read_line(&mut self.buf)
                .map_err(|e| Error::invalid(format!("csv read: {e}")))?;
            if more == 0 {
                return Err(Error::invalid("unterminated quoted field at end of file"));
            }
        }
        let line = self.buf.trim_end_matches(['\n', '\r']);
        Ok(Some(parse_record(line)?))
    }
}

fn parse_record(line: &str) -> Result<Vec<Option<String>>> {
    let bytes = line.as_bytes();
    let mut cells = Vec::new();
    let mut i = 0;
    loop {
        if i < bytes.len() && bytes[i] == b'"' {
            // Quoted field.
            let mut s = String::new();
            i += 1;
            loop {
                if i >= bytes.len() {
                    return Err(Error::invalid("unterminated quoted field"));
                }
                if bytes[i] == b'"' {
                    if i + 1 < bytes.len() && bytes[i + 1] == b'"' {
                        s.push('"');
                        i += 2;
                        continue;
                    }
                    i += 1;
                    break;
                }
                s.push(bytes[i] as char);
                i += 1;
            }
            cells.push(Some(s));
        } else {
            // Unquoted field up to the next comma.
            let start = i;
            while i < bytes.len() && bytes[i] != b',' {
                i += 1;
            }
            let text = &line[start..i];
            cells.push(if text.is_empty() {
                None
            } else {
                Some(text.to_string())
            });
        }
        if i >= bytes.len() {
            break;
        }
        if bytes[i] != b',' {
            return Err(Error::invalid(format!(
                "expected `,` at byte {i} of `{line}`"
            )));
        }
        i += 1;
        if i == bytes.len() {
            cells.push(None); // trailing comma = trailing NULL field
            break;
        }
    }
    Ok(cells)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::RelationBuilder;
    use std::io::BufReader;

    fn sample() -> Relation {
        RelationBuilder::new("T")
            .column("k", DataType::Int)
            .column("name", DataType::Str)
            .column("score", DataType::Float)
            .row(vec![1.into(), "plain".into(), 1.5.into()])
            .row(vec![2.into(), "with, comma".into(), Value::Null])
            .row(vec![Value::Null, "say \"hi\"".into(), 2.0.into()])
            .row(vec![4.into(), "".into(), 0.25.into()])
            .build()
            .unwrap()
    }

    #[test]
    fn roundtrip_with_schema() {
        let rel = sample();
        let mut buf = Vec::new();
        write_csv(&rel, &mut buf).unwrap();
        let mut reader = BufReader::new(buf.as_slice());
        let back = read_csv(&mut reader, rel.schema().clone()).unwrap();
        assert!(rel.multiset_eq(&back), "{rel}\nvs\n{back}");
    }

    #[test]
    fn roundtrip_with_inference() {
        let rel = sample();
        let mut buf = Vec::new();
        write_csv(&rel, &mut buf).unwrap();
        let mut reader = BufReader::new(buf.as_slice());
        let back = read_csv_infer(&mut reader, "T").unwrap();
        assert!(rel.multiset_eq(&back));
        assert_eq!(back.schema().field(0).data_type, DataType::Int);
        assert_eq!(back.schema().field(1).data_type, DataType::Str);
        assert_eq!(back.schema().field(2).data_type, DataType::Float);
        assert_eq!(back.schema().field(0).qualifier, "T");
    }

    #[test]
    fn null_vs_empty_string() {
        let text = "T.a,T.b\n,\"\"\n";
        let mut reader = BufReader::new(text.as_bytes());
        let rel = read_csv_infer(&mut reader, "T").unwrap();
        assert!(rel.rows()[0][0].is_null());
        assert_eq!(rel.rows()[0][1], Value::str(""));
    }

    #[test]
    fn embedded_newline_in_quoted_field() {
        let text = "a\n\"line1\nline2\"\n";
        let mut reader = BufReader::new(text.as_bytes());
        let rel = read_csv_infer(&mut reader, "T").unwrap();
        assert_eq!(rel.rows()[0][0], Value::str("line1\nline2"));
    }

    #[test]
    fn header_mismatch_is_rejected() {
        let schema = Schema::qualified("T", &[("x", DataType::Int)]);
        let mut reader = BufReader::new("wrong\n1\n".as_bytes());
        assert!(read_csv(&mut reader, schema).is_err());
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let schema = Schema::qualified("T", &[("x", DataType::Int)]);
        let mut reader = BufReader::new("x\n1,2\n".as_bytes());
        assert!(read_csv(&mut reader, schema).is_err());
    }

    #[test]
    fn bad_typed_cell_is_rejected() {
        let schema = Schema::qualified("T", &[("x", DataType::Int)]);
        let mut reader = BufReader::new("x\nnope\n".as_bytes());
        assert!(read_csv(&mut reader, schema).is_err());
    }

    #[test]
    fn empty_file_yields_empty_relation() {
        let schema = Schema::qualified("T", &[("x", DataType::Int)]);
        let mut reader = BufReader::new("".as_bytes());
        let rel = read_csv(&mut reader, schema).unwrap();
        assert!(rel.is_empty());
    }

    #[test]
    fn trailing_comma_is_trailing_null() {
        let text = "a,b\n1,\n";
        let mut reader = BufReader::new(text.as_bytes());
        let rel = read_csv_infer(&mut reader, "T").unwrap();
        assert_eq!(rel.rows()[0][0], Value::Int(1));
        assert!(rel.rows()[0][1].is_null());
    }

    #[test]
    fn crlf_tolerated() {
        let text = "a,b\r\n1,2\r\n";
        let mut reader = BufReader::new(text.as_bytes());
        let rel = read_csv_infer(&mut reader, "T").unwrap();
        assert_eq!(rel.rows()[0][1], Value::Int(2));
    }
}
