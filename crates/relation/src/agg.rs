//! SQL aggregate functions with incremental accumulators.
//!
//! The GMDJ evaluator updates one [`Accumulator`] per (base tuple,
//! aggregate) pair on every matching detail tuple, so accumulators are the
//! innermost state machine of the whole engine. SQL semantics implemented:
//!
//! * `COUNT(*)` counts tuples, `COUNT(e)` counts non-NULL values.
//! * `SUM`/`MIN`/`MAX`/`AVG` skip NULLs and return NULL over the empty
//!   multiset — the footnote-2 subtlety the paper uses to show that
//!   `x >all S` is **not** equivalent to `x > max(S)`.

use std::fmt;

use crate::error::Result;
use crate::expr::{BoundScalar, ScalarExpr};
use crate::schema::{DataType, Field, Schema};
use crate::value::Value;

/// The aggregate functions supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `COUNT(*)` — counts tuples regardless of NULLs.
    CountStar,
    /// `COUNT(e)` — counts non-NULL values of `e`.
    Count,
    /// `COUNT(DISTINCT e)` — counts distinct non-NULL values (grouping
    /// equality: NULLs excluded, Int 1 ≡ Float 1.0).
    CountDistinct,
    Sum,
    Min,
    Max,
    Avg,
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AggFunc::CountStar => write!(f, "count(*)"),
            AggFunc::Count => write!(f, "count"),
            AggFunc::CountDistinct => write!(f, "count(distinct)"),
            AggFunc::Sum => write!(f, "sum"),
            AggFunc::Min => write!(f, "min"),
            AggFunc::Max => write!(f, "max"),
            AggFunc::Avg => write!(f, "avg"),
        }
    }
}

impl AggFunc {
    /// Result type produced by this aggregate.
    pub fn result_type(&self, input: DataType) -> DataType {
        match self {
            AggFunc::CountStar | AggFunc::Count | AggFunc::CountDistinct => DataType::Int,
            AggFunc::Avg => DataType::Float,
            AggFunc::Sum | AggFunc::Min | AggFunc::Max => input,
        }
    }
}

/// An aggregate call with an output name: the paper's
/// `sum(F.NumBytes) → sum1` notation.
#[derive(Debug, Clone, PartialEq)]
pub struct NamedAgg {
    pub func: AggFunc,
    /// Input expression. Ignored for `COUNT(*)`.
    pub input: Option<ScalarExpr>,
    /// Output attribute name.
    pub output: String,
}

impl NamedAgg {
    /// `count(*) → output`.
    pub fn count_star(output: impl Into<String>) -> Self {
        NamedAgg {
            func: AggFunc::CountStar,
            input: None,
            output: output.into(),
        }
    }

    /// `func(input) → output`.
    pub fn new(func: AggFunc, input: ScalarExpr, output: impl Into<String>) -> Self {
        NamedAgg {
            func,
            input: Some(input),
            output: output.into(),
        }
    }

    /// `sum(input) → output`.
    pub fn sum(input: ScalarExpr, output: impl Into<String>) -> Self {
        NamedAgg::new(AggFunc::Sum, input, output)
    }

    /// The output field (unqualified; computed column).
    pub fn output_field(&self) -> Field {
        // Advisory type: Int covers counts; numeric aggregates over ints
        // remain ints. The runtime is dynamically typed, so this is only
        // for diagnostics.
        Field::unqualified(self.output.clone(), DataType::Int)
    }

    /// Bind the input expression against scopes.
    pub fn bind(&self, scopes: &[&Schema]) -> Result<BoundAgg> {
        Ok(BoundAgg {
            func: self.func,
            input: match &self.input {
                Some(e) => Some(e.bind(scopes)?),
                None => None,
            },
        })
    }
}

impl fmt::Display for NamedAgg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.input {
            Some(e) => write!(f, "{}({e}) → {}", self.func, self.output),
            None => write!(f, "{} → {}", self.func, self.output),
        }
    }
}

/// A bound aggregate call, ready to spawn accumulators.
#[derive(Debug, Clone)]
pub struct BoundAgg {
    pub func: AggFunc,
    pub input: Option<BoundScalar>,
}

impl BoundAgg {
    /// Fresh accumulator in the initial (empty multiset) state.
    pub fn accumulator(&self) -> Accumulator {
        Accumulator::new(self.func)
    }

    /// Evaluate the input expression and fold it into `acc`.
    pub fn update(&self, acc: &mut Accumulator, rows: &[&[Value]]) -> Result<()> {
        match &self.input {
            None => {
                acc.update(&Value::Int(1)); // COUNT(*): any non-null marker
                Ok(())
            }
            Some(e) => {
                let v = e.eval(rows)?;
                acc.update(&v);
                Ok(())
            }
        }
    }
}

/// Incremental aggregate state. `PartialEq` compares the exact state
/// (set contents for COUNT DISTINCT, bit-wise floats for SUM/AVG), which
/// is what the wire-protocol round-trip tests assert.
#[derive(Debug, Clone, PartialEq)]
pub enum Accumulator {
    CountStar {
        n: i64,
    },
    Count {
        n: i64,
    },
    CountDistinct {
        seen: crate::fxhash::FxHashSet<Value>,
    },
    Sum {
        sum_i: i64,
        sum_f: f64,
        any_float: bool,
        seen: bool,
    },
    Min {
        current: Option<Value>,
    },
    Max {
        current: Option<Value>,
    },
    Avg {
        sum: f64,
        n: i64,
    },
}

impl Accumulator {
    /// Initial state for a function.
    pub fn new(func: AggFunc) -> Self {
        match func {
            AggFunc::CountStar => Accumulator::CountStar { n: 0 },
            AggFunc::Count => Accumulator::Count { n: 0 },
            AggFunc::CountDistinct => Accumulator::CountDistinct {
                seen: crate::fxhash::FxHashSet::default(),
            },
            AggFunc::Sum => Accumulator::Sum {
                sum_i: 0,
                sum_f: 0.0,
                any_float: false,
                seen: false,
            },
            AggFunc::Min => Accumulator::Min { current: None },
            AggFunc::Max => Accumulator::Max { current: None },
            AggFunc::Avg => Accumulator::Avg { sum: 0.0, n: 0 },
        }
    }

    /// Fold one value. NULLs are skipped by every function except
    /// `COUNT(*)` (whose caller feeds a non-null marker per tuple).
    #[inline]
    pub fn update(&mut self, v: &Value) {
        match self {
            Accumulator::CountStar { n } => *n += 1,
            Accumulator::Count { n } => {
                if !v.is_null() {
                    *n += 1;
                }
            }
            Accumulator::CountDistinct { seen } => {
                if !v.is_null() {
                    seen.insert(v.clone());
                }
            }
            Accumulator::Sum {
                sum_i,
                sum_f,
                any_float,
                seen,
            } => match v {
                Value::Int(i) => {
                    *sum_i = sum_i.wrapping_add(*i);
                    *seen = true;
                }
                Value::Float(f) => {
                    *sum_f += f;
                    *any_float = true;
                    *seen = true;
                }
                _ => {}
            },
            Accumulator::Min { current } => {
                if !v.is_null() {
                    let replace = match current {
                        None => true,
                        Some(c) => v.total_cmp(c) == std::cmp::Ordering::Less,
                    };
                    if replace {
                        *current = Some(v.clone());
                    }
                }
            }
            Accumulator::Max { current } => {
                if !v.is_null() {
                    let replace = match current {
                        None => true,
                        Some(c) => v.total_cmp(c) == std::cmp::Ordering::Greater,
                    };
                    if replace {
                        *current = Some(v.clone());
                    }
                }
            }
            Accumulator::Avg { sum, n } => {
                if let Some(f) = v.as_f64() {
                    *sum += f;
                    *n += 1;
                }
            }
        }
    }

    /// Batched `COUNT(*)` update: fold `k` tuples at once. Exact for
    /// `CountStar` (the marker value never matters); any other function
    /// falls back to `k` marker updates, reproducing the row path.
    #[inline]
    pub fn add_count_star(&mut self, k: i64) {
        if let Accumulator::CountStar { n } = self {
            *n += k;
        } else {
            for _ in 0..k {
                self.update(&Value::Int(1));
            }
        }
    }

    /// Batched update from a typed integer column. `vals` must hold the
    /// **non-NULL** input values of the selected rows in detail-row order
    /// (NULL inputs are no-ops for every function that takes an input, so
    /// dropping them is exact). Bulk shortcuts are taken only where the
    /// result is bit-identical to folding row by row: counts add the
    /// length, integer SUM wraps per element, MIN/MAX fold a batch-local
    /// extremum and then apply one ordinary update (strict-inequality
    /// replacement keeps tie behavior identical).
    pub fn update_ints(&mut self, vals: &[i64]) {
        match self {
            Accumulator::CountStar { n } | Accumulator::Count { n } => *n += vals.len() as i64,
            Accumulator::CountDistinct { seen } => {
                for &v in vals {
                    seen.insert(Value::Int(v));
                }
            }
            Accumulator::Sum { sum_i, seen, .. } => {
                if !vals.is_empty() {
                    *seen = true;
                }
                for &v in vals {
                    *sum_i = sum_i.wrapping_add(v);
                }
            }
            Accumulator::Min { .. } => {
                if let Some(&m) = vals.iter().min() {
                    self.update(&Value::Int(m));
                }
            }
            Accumulator::Max { .. } => {
                if let Some(&m) = vals.iter().max() {
                    self.update(&Value::Int(m));
                }
            }
            Accumulator::Avg { sum, n } => {
                for &v in vals {
                    *sum += v as f64;
                }
                *n += vals.len() as i64;
            }
        }
    }

    /// Batched update from a typed float column; same contract as
    /// [`update_ints`](Self::update_ints). Float SUM/AVG still add element
    /// by element in row order — floating-point addition is
    /// order-sensitive and the row path's rounding must be reproduced
    /// exactly. MIN/MAX fold under `f64::total_cmp`, matching
    /// `Value::total_cmp`.
    pub fn update_floats(&mut self, vals: &[f64]) {
        match self {
            Accumulator::CountStar { n } | Accumulator::Count { n } => *n += vals.len() as i64,
            Accumulator::CountDistinct { seen } => {
                for &v in vals {
                    seen.insert(Value::Float(v));
                }
            }
            Accumulator::Sum {
                sum_f,
                any_float,
                seen,
                ..
            } => {
                if !vals.is_empty() {
                    *any_float = true;
                    *seen = true;
                }
                for &v in vals {
                    *sum_f += v;
                }
            }
            Accumulator::Min { .. } => {
                if let Some(m) =
                    vals.iter()
                        .copied()
                        .reduce(|a, b| if b.total_cmp(&a).is_lt() { b } else { a })
                {
                    self.update(&Value::Float(m));
                }
            }
            Accumulator::Max { .. } => {
                if let Some(m) =
                    vals.iter()
                        .copied()
                        .reduce(|a, b| if b.total_cmp(&a).is_gt() { b } else { a })
                {
                    self.update(&Value::Float(m));
                }
            }
            Accumulator::Avg { sum, n } => {
                for &v in vals {
                    *sum += v;
                }
                *n += vals.len() as i64;
            }
        }
    }

    /// Fold another accumulator of the same function into this one —
    /// the combine step of partitioned/parallel aggregation. Partial
    /// aggregates over disjoint multisets merge exactly for every
    /// supported function (COUNT/SUM/MIN/MAX are trivially decomposable;
    /// AVG carries (sum, n)).
    ///
    /// # Panics
    ///
    /// Panics if the accumulators belong to different functions — a plan
    /// construction bug, not a data condition.
    pub fn merge(&mut self, other: &Accumulator) {
        match (self, other) {
            (Accumulator::CountStar { n }, Accumulator::CountStar { n: m }) => *n += m,
            (Accumulator::Count { n }, Accumulator::Count { n: m }) => *n += m,
            (Accumulator::CountDistinct { seen }, Accumulator::CountDistinct { seen: other }) => {
                seen.extend(other.iter().cloned())
            }
            (
                Accumulator::Sum {
                    sum_i,
                    sum_f,
                    any_float,
                    seen,
                },
                Accumulator::Sum {
                    sum_i: si,
                    sum_f: sf,
                    any_float: af,
                    seen: sn,
                },
            ) => {
                *sum_i = sum_i.wrapping_add(*si);
                *sum_f += sf;
                *any_float |= af;
                *seen |= sn;
            }
            (Accumulator::Min { current }, Accumulator::Min { current: other }) => {
                if let Some(v) = other {
                    let replace = match current {
                        None => true,
                        Some(c) => v.total_cmp(c) == std::cmp::Ordering::Less,
                    };
                    if replace {
                        *current = Some(v.clone());
                    }
                }
            }
            (Accumulator::Max { current }, Accumulator::Max { current: other }) => {
                if let Some(v) = other {
                    let replace = match current {
                        None => true,
                        Some(c) => v.total_cmp(c) == std::cmp::Ordering::Greater,
                    };
                    if replace {
                        *current = Some(v.clone());
                    }
                }
            }
            (Accumulator::Avg { sum, n }, Accumulator::Avg { sum: s, n: m }) => {
                *sum += s;
                *n += m;
            }
            (a, b) => panic!("cannot merge accumulators of different functions: {a:?} vs {b:?}"),
        }
    }

    /// Final value. NULL over the empty multiset for everything but COUNT.
    pub fn finish(&self) -> Value {
        match self {
            Accumulator::CountStar { n } | Accumulator::Count { n } => Value::Int(*n),
            Accumulator::CountDistinct { seen } => Value::Int(seen.len() as i64),
            Accumulator::Sum {
                sum_i,
                sum_f,
                any_float,
                seen,
            } => {
                if !*seen {
                    Value::Null
                } else if *any_float {
                    Value::Float(*sum_f + *sum_i as f64)
                } else {
                    Value::Int(*sum_i)
                }
            }
            Accumulator::Min { current } | Accumulator::Max { current } => {
                current.clone().unwrap_or(Value::Null)
            }
            Accumulator::Avg { sum, n } => {
                if *n == 0 {
                    Value::Null
                } else {
                    Value::Float(*sum / *n as f64)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(func: AggFunc, values: &[Value]) -> Value {
        let mut acc = Accumulator::new(func);
        for v in values {
            acc.update(v);
        }
        acc.finish()
    }

    #[test]
    fn count_star_counts_everything_via_marker() {
        // The caller feeds a marker per tuple; NULL inputs never reach
        // CountStar in practice, but the state machine itself counts all.
        assert_eq!(
            run(AggFunc::CountStar, &[Value::Int(1), Value::Int(1)]),
            Value::Int(2)
        );
    }

    #[test]
    fn count_distinct_counts_distinct_non_nulls() {
        assert_eq!(
            run(
                AggFunc::CountDistinct,
                &[
                    Value::Int(1),
                    Value::Int(1),
                    Value::Null,
                    Value::Int(2),
                    Value::Float(1.0)
                ]
            ),
            Value::Int(2),
            "1 ≡ 1.0 under grouping equality; NULL excluded"
        );
        assert_eq!(run(AggFunc::CountDistinct, &[]), Value::Int(0));
    }

    #[test]
    fn count_skips_nulls() {
        assert_eq!(
            run(AggFunc::Count, &[Value::Int(1), Value::Null, Value::Int(3)]),
            Value::Int(2)
        );
    }

    #[test]
    fn empty_aggregates_are_null_except_count() {
        assert_eq!(run(AggFunc::Count, &[]), Value::Int(0));
        assert_eq!(run(AggFunc::CountStar, &[]), Value::Int(0));
        assert!(run(AggFunc::Sum, &[]).is_null());
        assert!(run(AggFunc::Min, &[]).is_null());
        assert!(run(AggFunc::Max, &[]).is_null());
        assert!(run(AggFunc::Avg, &[]).is_null());
    }

    #[test]
    fn sum_stays_integral_until_float_appears() {
        assert_eq!(
            run(AggFunc::Sum, &[Value::Int(2), Value::Int(3)]),
            Value::Int(5)
        );
        assert_eq!(
            run(AggFunc::Sum, &[Value::Int(2), Value::Float(0.5)]),
            Value::Float(2.5)
        );
    }

    #[test]
    fn min_max_skip_nulls() {
        assert_eq!(
            run(AggFunc::Min, &[Value::Null, Value::Int(3), Value::Int(-1)]),
            Value::Int(-1)
        );
        assert_eq!(
            run(AggFunc::Max, &[Value::Int(3), Value::Null, Value::Int(7)]),
            Value::Int(7)
        );
    }

    #[test]
    fn avg_is_float() {
        assert_eq!(
            run(AggFunc::Avg, &[Value::Int(1), Value::Int(2)]),
            Value::Float(1.5)
        );
    }

    #[test]
    fn max_of_nothing_is_null_footnote_2() {
        // The paper's footnote 2: `B.x > max(R.y)` over an empty correlated
        // range yields unknown (NULL), while `B.x >all R.y` is true. The
        // NULL here is the half of that argument owned by this crate.
        assert!(run(AggFunc::Max, &[]).is_null());
    }

    #[test]
    fn merge_equals_sequential_for_every_function() {
        use AggFunc::*;
        let values: Vec<Value> = vec![
            Value::Int(3),
            Value::Null,
            Value::Int(-1),
            Value::Float(2.5),
            Value::Int(7),
        ];
        for f in [CountStar, Count, CountDistinct, Sum, Min, Max, Avg] {
            for split in 0..=values.len() {
                let mut left = Accumulator::new(f);
                let mut right = Accumulator::new(f);
                for v in &values[..split] {
                    left.update(v);
                }
                for v in &values[split..] {
                    right.update(v);
                }
                left.merge(&right);
                let mut sequential = Accumulator::new(f);
                for v in &values {
                    sequential.update(v);
                }
                assert_eq!(left.finish(), sequential.finish(), "{f} split at {split}");
            }
        }
    }

    #[test]
    fn batched_updates_equal_sequential_for_every_function() {
        use AggFunc::*;
        let ints = [3i64, -1, 3, 7, 0];
        let floats = [2.5f64, -0.0, 0.0, 2.5, 9.25];
        for f in [CountStar, Count, CountDistinct, Sum, Min, Max, Avg] {
            let mut batched = Accumulator::new(f);
            batched.update_ints(&ints);
            let mut rowwise = Accumulator::new(f);
            for &v in &ints {
                rowwise.update(&Value::Int(v));
            }
            assert_eq!(batched.finish(), rowwise.finish(), "{f} over ints");

            let mut batched = Accumulator::new(f);
            batched.update_floats(&floats);
            let mut rowwise = Accumulator::new(f);
            for &v in &floats {
                rowwise.update(&Value::Float(v));
            }
            assert_eq!(batched.finish(), rowwise.finish(), "{f} over floats");

            let mut batched = Accumulator::new(f);
            batched.update_ints(&[]);
            batched.update_floats(&[]);
            assert_eq!(
                batched.finish(),
                Accumulator::new(f).finish(),
                "{f} empty batches must not flip seen-ness"
            );
        }
        let mut star = Accumulator::new(CountStar);
        star.add_count_star(4);
        assert_eq!(star.finish(), Value::Int(4));
    }

    #[test]
    #[should_panic(expected = "different functions")]
    fn merge_rejects_mismatched_functions() {
        let mut a = Accumulator::new(AggFunc::Sum);
        a.merge(&Accumulator::new(AggFunc::Min));
    }

    #[test]
    fn string_min_max() {
        assert_eq!(
            run(AggFunc::Min, &[Value::str("b"), Value::str("a")]),
            Value::str("a")
        );
    }
}
