//! Join operators: cross product, θ-join, left outer join, semi-join and
//! anti-join — the vocabulary of the join/outer-join unnesting baseline.
//!
//! Every join condition is analyzed once ([`analyze_join`]) into hashable
//! equality key pairs plus a residual predicate; joins pick a hash plan
//! when at least one equality pair exists and fall back to block
//! nested-loop otherwise. Callers can force the nested-loop path (the
//! paper's "no useful indexes" experimental condition) via
//! [`nested_loop_join`] and the `*_nl` variants.

use std::sync::Arc;

use crate::error::Result;
use crate::expr::{BoundPredicate, CmpOp, Predicate, ScalarExpr};
use crate::index::{key_of, HashIndex};
use crate::relation::{Relation, Tuple};
use crate::schema::Schema;
use crate::value::Value;

/// Decomposition of a join condition against (left, right) schemas.
#[derive(Debug)]
pub struct JoinAnalysis {
    /// Positions in the left schema, pairwise with `right_keys`.
    pub left_keys: Vec<usize>,
    /// Positions in the right schema.
    pub right_keys: Vec<usize>,
    /// Non-equality conjuncts, bound against `[left, right]`; `None` when
    /// the condition is a pure equi-join.
    pub residual: Option<BoundPredicate>,
}

impl JoinAnalysis {
    /// True when a hash plan is applicable.
    pub fn has_equi_keys(&self) -> bool {
        !self.left_keys.is_empty()
    }
}

/// Split `pred` into equality column pairs spanning the two schemas plus a
/// residual predicate.
///
/// A conjunct contributes a key pair iff it is `c1 = c2` with one column
/// resolving only in `left` and the other only in `right`. Everything else
/// (non-equalities, single-side predicates, expressions) lands in the
/// residual.
pub fn analyze_join(pred: &Predicate, left: &Schema, right: &Schema) -> Result<JoinAnalysis> {
    let mut left_keys = Vec::new();
    let mut right_keys = Vec::new();
    let mut residual_parts: Vec<Predicate> = Vec::new();
    for conjunct in pred.split_conjuncts() {
        if let Predicate::Cmp {
            op: CmpOp::Eq,
            left: l,
            right: r,
        } = conjunct
        {
            if let (ScalarExpr::Column(lc), ScalarExpr::Column(rc)) = (l, r) {
                let l_in_left = lc.resolve_in(left).is_ok();
                let l_in_right = lc.resolve_in(right).is_ok();
                let r_in_left = rc.resolve_in(left).is_ok();
                let r_in_right = rc.resolve_in(right).is_ok();
                if l_in_left && !l_in_right && r_in_right && !r_in_left {
                    left_keys.push(lc.resolve_in(left)?);
                    right_keys.push(rc.resolve_in(right)?);
                    continue;
                }
                if l_in_right && !l_in_left && r_in_left && !r_in_right {
                    left_keys.push(rc.resolve_in(left)?);
                    right_keys.push(lc.resolve_in(right)?);
                    continue;
                }
            }
        }
        residual_parts.push(conjunct.clone());
    }
    let residual = if residual_parts.is_empty() {
        None
    } else {
        Some(Predicate::conjoin(residual_parts).bind(&[left, right])?)
    };
    Ok(JoinAnalysis {
        left_keys,
        right_keys,
        residual,
    })
}

fn concat_schemas(left: &Relation, right: &Relation) -> Result<Arc<Schema>> {
    left.schema().concat(right.schema())
}

fn concat_rows(l: &[Value], r: &[Value]) -> Tuple {
    let mut out = Vec::with_capacity(l.len() + r.len());
    out.extend_from_slice(l);
    out.extend_from_slice(r);
    out.into_boxed_slice()
}

/// B × R.
pub fn cross_product(left: &Relation, right: &Relation) -> Result<Relation> {
    let schema = concat_schemas(left, right)?;
    let mut rows = Vec::with_capacity(left.len().saturating_mul(right.len()));
    for l in left.rows() {
        for r in right.rows() {
            rows.push(concat_rows(l, r));
        }
    }
    Ok(Relation::from_parts(schema, rows))
}

/// θ-join choosing hash vs nested-loop automatically.
pub fn theta_join(left: &Relation, right: &Relation, pred: &Predicate) -> Result<Relation> {
    let analysis = analyze_join(pred, left.schema(), right.schema())?;
    if analysis.has_equi_keys() {
        hash_join_inner(left, right, &analysis)
    } else {
        nested_loop_join(left, right, pred)
    }
}

/// Block nested-loop θ-join (the unindexed experimental condition).
pub fn nested_loop_join(left: &Relation, right: &Relation, pred: &Predicate) -> Result<Relation> {
    let schema = concat_schemas(left, right)?;
    let bound = pred.bind(&[left.schema(), right.schema()])?;
    let mut rows = Vec::new();
    for l in left.rows() {
        for r in right.rows() {
            if bound.eval(&[l, r])?.passes() {
                rows.push(concat_rows(l, r));
            }
        }
    }
    Ok(Relation::from_parts(schema, rows))
}

fn hash_join_inner(left: &Relation, right: &Relation, analysis: &JoinAnalysis) -> Result<Relation> {
    let schema = concat_schemas(left, right)?;
    // Build on the right (conventional: probe with the outer/left input).
    let index = HashIndex::build(right, &analysis.right_keys);
    let mut rows = Vec::new();
    for l in left.rows() {
        let key = key_of(l, &analysis.left_keys);
        for &ri in index.probe(&key) {
            let r = &right.rows()[ri as usize];
            if let Some(res) = &analysis.residual {
                if !res.eval(&[l, r])?.passes() {
                    continue;
                }
            }
            rows.push(concat_rows(l, r));
        }
    }
    Ok(Relation::from_parts(schema, rows))
}

/// Left outer join: every left tuple appears at least once; unmatched left
/// tuples are padded with NULLs on the right. The aggregate-then-outer-join
/// unnesting strategy (Kim's COUNT-bug fix) depends on this operator.
pub fn left_outer_join(left: &Relation, right: &Relation, pred: &Predicate) -> Result<Relation> {
    let schema = concat_schemas(left, right)?;
    let analysis = analyze_join(pred, left.schema(), right.schema())?;
    let nulls: Tuple = vec![Value::Null; right.schema().len()].into_boxed_slice();
    let mut rows = Vec::new();
    if analysis.has_equi_keys() {
        let index = HashIndex::build(right, &analysis.right_keys);
        for l in left.rows() {
            let key = key_of(l, &analysis.left_keys);
            let mut matched = false;
            for &ri in index.probe(&key) {
                let r = &right.rows()[ri as usize];
                if let Some(res) = &analysis.residual {
                    if !res.eval(&[l, r])?.passes() {
                        continue;
                    }
                }
                matched = true;
                rows.push(concat_rows(l, r));
            }
            if !matched {
                rows.push(concat_rows(l, &nulls));
            }
        }
    } else {
        let bound = pred.bind(&[left.schema(), right.schema()])?;
        for l in left.rows() {
            let mut matched = false;
            for r in right.rows() {
                if bound.eval(&[l, r])?.passes() {
                    matched = true;
                    rows.push(concat_rows(l, r));
                }
            }
            if !matched {
                rows.push(concat_rows(l, &nulls));
            }
        }
    }
    Ok(Relation::from_parts(schema, rows))
}

/// Semi-join: left tuples with at least one right match (EXISTS rewrite).
pub fn semi_join(left: &Relation, right: &Relation, pred: &Predicate) -> Result<Relation> {
    Ok(filter_by_match(left, right, pred, true, /*use_hash=*/ true)?.0)
}

/// Anti-join: left tuples with no right match (NOT EXISTS rewrite).
pub fn anti_join(left: &Relation, right: &Relation, pred: &Predicate) -> Result<Relation> {
    Ok(filter_by_match(left, right, pred, false, /*use_hash=*/ true)?.0)
}

/// Semi-join forced onto the nested-loop path (unindexed condition).
pub fn semi_join_nl(left: &Relation, right: &Relation, pred: &Predicate) -> Result<Relation> {
    Ok(filter_by_match(left, right, pred, true, /*use_hash=*/ false)?.0)
}

/// Anti-join forced onto the nested-loop path (unindexed condition).
pub fn anti_join_nl(left: &Relation, right: &Relation, pred: &Predicate) -> Result<Relation> {
    Ok(filter_by_match(left, right, pred, false, /*use_hash=*/ false)?.0)
}

/// Instrumented semi/anti join: also returns the number of candidate
/// pairs considered (build-side tuples count once), the cost figure the
/// benchmark harness reports.
pub fn semi_or_anti_with_work(
    left: &Relation,
    right: &Relation,
    pred: &Predicate,
    keep_matched: bool,
    use_hash: bool,
) -> Result<(Relation, u64)> {
    filter_by_match(left, right, pred, keep_matched, use_hash)
}

fn filter_by_match(
    left: &Relation,
    right: &Relation,
    pred: &Predicate,
    keep_matched: bool,
    use_hash: bool,
) -> Result<(Relation, u64)> {
    let mut work: u64 = 0;
    let mut rows = Vec::new();
    let analysis = analyze_join(pred, left.schema(), right.schema())?;
    if use_hash && analysis.has_equi_keys() {
        work += right.len() as u64; // build side
        let index = HashIndex::build(right, &analysis.right_keys);
        for l in left.rows() {
            let key = key_of(l, &analysis.left_keys);
            let mut matched = false;
            for &ri in index.probe(&key) {
                work += 1;
                let r = &right.rows()[ri as usize];
                match &analysis.residual {
                    Some(res) => {
                        if res.eval(&[l, r])?.passes() {
                            matched = true;
                            break;
                        }
                    }
                    None => {
                        matched = true;
                        break;
                    }
                }
            }
            if matched == keep_matched {
                rows.push(l.clone());
            }
        }
    } else {
        let bound = pred.bind(&[left.schema(), right.schema()])?;
        for l in left.rows() {
            let mut matched = false;
            for r in right.rows() {
                work += 1;
                if bound.eval(&[l, r])?.passes() {
                    matched = true;
                    break;
                }
            }
            if matched == keep_matched {
                rows.push(l.clone());
            }
        }
    }
    Ok((Relation::from_parts(left.schema().clone(), rows), work))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use crate::relation::RelationBuilder;
    use crate::schema::DataType;

    fn left() -> Relation {
        RelationBuilder::new("L")
            .column("k", DataType::Int)
            .column("x", DataType::Int)
            .row(vec![1.into(), 100.into()])
            .row(vec![2.into(), 200.into()])
            .row(vec![3.into(), 300.into()])
            .row(vec![Value::Null, 400.into()])
            .build()
            .unwrap()
    }

    fn right() -> Relation {
        RelationBuilder::new("R")
            .column("k", DataType::Int)
            .column("y", DataType::Int)
            .row(vec![1.into(), 10.into()])
            .row(vec![1.into(), 20.into()])
            .row(vec![3.into(), 5.into()])
            .row(vec![Value::Null, 7.into()])
            .build()
            .unwrap()
    }

    #[test]
    fn analyze_extracts_equi_pairs_both_orientations() {
        let l = left();
        let r = right();
        let p1 = col("L.k").eq(col("R.k")).and(col("L.x").gt(col("R.y")));
        let a = analyze_join(&p1, l.schema(), r.schema()).unwrap();
        assert_eq!(a.left_keys, vec![0]);
        assert_eq!(a.right_keys, vec![0]);
        assert!(a.residual.is_some());
        let p2 = col("R.k").eq(col("L.k"));
        let a = analyze_join(&p2, l.schema(), r.schema()).unwrap();
        assert_eq!(a.left_keys, vec![0]);
        assert_eq!(a.right_keys, vec![0]);
        assert!(a.residual.is_none());
    }

    #[test]
    fn hash_and_nested_loop_joins_agree() {
        let l = left();
        let r = right();
        let p = col("L.k").eq(col("R.k")).and(col("R.y").ge(lit(10)));
        let h = theta_join(&l, &r, &p).unwrap();
        let n = nested_loop_join(&l, &r, &p).unwrap();
        assert!(h.multiset_eq(&n));
        assert_eq!(h.len(), 2); // k=1 matches y=10 and y=20; k=3 fails residual
    }

    #[test]
    fn null_keys_never_join() {
        let l = left();
        let r = right();
        let p = col("L.k").eq(col("R.k"));
        let j = theta_join(&l, &r, &p).unwrap();
        // NULL on either side joins nothing.
        assert_eq!(j.len(), 3);
    }

    #[test]
    fn left_outer_join_pads_nulls() {
        let l = left();
        let r = right();
        let p = col("L.k").eq(col("R.k"));
        let j = left_outer_join(&l, &r, &p).unwrap();
        // k=1 twice, k=2 padded, k=3 once, NULL padded → 5 rows.
        assert_eq!(j.len(), 5);
        let padded: Vec<_> = j.rows().iter().filter(|row| row[2].is_null()).collect();
        assert_eq!(padded.len(), 2);
    }

    #[test]
    fn semi_and_anti_partition_left() {
        let l = left();
        let r = right();
        let p = col("L.k").eq(col("R.k"));
        let s = semi_join(&l, &r, &p).unwrap();
        let a = anti_join(&l, &r, &p).unwrap();
        assert_eq!(s.len(), 2); // k=1, k=3
        assert_eq!(a.len(), 2); // k=2 and the NULL row
        assert_eq!(s.len() + a.len(), l.len());
        // Forced nested-loop variants agree.
        assert!(semi_join_nl(&l, &r, &p).unwrap().multiset_eq(&s));
        assert!(anti_join_nl(&l, &r, &p).unwrap().multiset_eq(&a));
    }

    #[test]
    fn non_equi_condition_falls_back_to_nested_loop() {
        let l = left();
        let r = right();
        let p = col("L.k").ne(col("R.k"));
        let j = theta_join(&l, &r, &p).unwrap();
        // NULL keys make the <> unknown → excluded. 3 left × 3 right minus
        // matches where equal: (1,1)x2, (3,3) → 9 - 3 = 6.
        assert_eq!(j.len(), 6);
    }

    #[test]
    fn cross_product_arity() {
        let l = left();
        let r = right();
        let c = cross_product(&l, &r).unwrap();
        assert_eq!(c.len(), 16);
        assert_eq!(c.schema().len(), 4);
    }
}
