//! Physical operators over in-memory relations.
//!
//! Every operator is a plain function from relations to a relation,
//! preserving multiset semantics. Joins and grouping live in submodules.

pub mod aggregate;
pub mod join;

pub use aggregate::group_by;
pub use join::{
    analyze_join, anti_join, cross_product, left_outer_join, nested_loop_join, semi_join,
    theta_join, JoinAnalysis,
};

use crate::error::{Error, Result};
use crate::expr::{Predicate, ScalarExpr};
use crate::fxhash::FxHashMap;
use crate::relation::{Relation, Tuple};
use crate::schema::{ColumnRef, DataType, Field, Schema};
use crate::value::Value;

/// Row-flow counters for the plain relational operators. The operators
/// themselves stay pure functions; executors record one `OpStats` per
/// plan node (via [`OpStats::record`]) so operator work sits next to the
/// GMDJ evaluator's counters in a per-node statistics tree.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpStats {
    /// Input tuples consumed by the operator.
    pub rows_in: u64,
    /// Output tuples produced.
    pub rows_out: u64,
}

impl OpStats {
    /// Record one operator application.
    pub fn record(&mut self, rows_in: usize, rows_out: usize) {
        self.rows_in += rows_in as u64;
        self.rows_out += rows_out as u64;
    }

    /// Fold another counter block into this one.
    pub fn merge(&mut self, other: &OpStats) {
        self.rows_in += other.rows_in;
        self.rows_out += other.rows_out;
    }
}

/// σ\[pred\](rel) — keep tuples whose predicate is *true* (where-clause
/// truncation: both false and unknown discard).
pub fn select(rel: &Relation, pred: &Predicate) -> Result<Relation> {
    let bound = pred.bind(&[rel.schema()])?;
    let mut rows = Vec::new();
    for row in rel.rows() {
        if bound.eval(&[row])?.passes() {
            rows.push(row.clone());
        }
    }
    Ok(Relation::from_parts(rel.schema().clone(), rows))
}

/// π\[items\](rel) — duplicate-preserving projection. Each item is an
/// expression with an optional output name; unnamed column references keep
/// their field, other unnamed expressions render their text as the name.
pub fn project(rel: &Relation, items: &[(ScalarExpr, Option<String>)]) -> Result<Relation> {
    let schema = rel.schema();
    let mut fields = Vec::with_capacity(items.len());
    for (expr, name) in items {
        let field = match (expr, name) {
            (ScalarExpr::Column(c), None) => {
                let idx = c.resolve_in(schema)?;
                schema.field(idx).clone()
            }
            (ScalarExpr::Column(c), Some(n)) => {
                let idx = c.resolve_in(schema)?;
                Field::unqualified(n.clone(), schema.field(idx).data_type)
            }
            (e, Some(n)) => {
                let _ = e; // type advisory only
                Field::unqualified(n.clone(), DataType::Int)
            }
            (e, None) => Field::unqualified(e.to_string(), DataType::Int),
        };
        fields.push(field);
    }
    // Reject duplicate output names early.
    for (i, f) in fields.iter().enumerate() {
        if fields[..i]
            .iter()
            .any(|g| g.qualifier == f.qualifier && g.name == f.name)
        {
            return Err(Error::DuplicateColumn {
                name: f.qualified_name(),
            });
        }
    }
    let out_schema = Schema::new(fields);
    let bound: Vec<_> = items
        .iter()
        .map(|(e, _)| e.bind(&[schema]))
        .collect::<Result<Vec<_>>>()?;
    let mut rows = Vec::with_capacity(rel.len());
    for row in rel.rows() {
        let mut out: Vec<Value> = Vec::with_capacity(bound.len());
        for b in &bound {
            out.push(b.eval(&[row])?);
        }
        rows.push(out.into_boxed_slice());
    }
    Ok(Relation::from_parts(out_schema, rows))
}

/// Projection onto named columns, preserving their fields.
pub fn project_columns(rel: &Relation, cols: &[ColumnRef]) -> Result<Relation> {
    let items: Vec<(ScalarExpr, Option<String>)> = cols
        .iter()
        .map(|c| (ScalarExpr::Column(c.clone()), None))
        .collect();
    project(rel, &items)
}

/// δ(rel) — duplicate elimination under grouping equality (NULLs collapse).
pub fn distinct(rel: &Relation) -> Relation {
    let mut seen: FxHashMap<Tuple, ()> = FxHashMap::default();
    let mut rows = Vec::new();
    for row in rel.rows() {
        if seen.insert(row.clone(), ()).is_none() {
            rows.push(row.clone());
        }
    }
    Relation::from_parts(rel.schema().clone(), rows)
}

/// Multiset union (UNION ALL). Schemas must have equal arity.
pub fn union_all(a: &Relation, b: &Relation) -> Result<Relation> {
    if a.schema().len() != b.schema().len() {
        return Err(Error::ArityMismatch {
            expected: a.schema().len(),
            actual: b.schema().len(),
        });
    }
    let mut rows = a.rows().to_vec();
    rows.extend_from_slice(b.rows());
    Ok(Relation::from_parts(a.schema().clone(), rows))
}

/// Multiset difference (monus): each tuple of `a` is removed once per
/// matching tuple of `b` (SQL `EXCEPT ALL`). Used by the join-unnesting
/// baseline for set-difference rewrites.
pub fn difference(a: &Relation, b: &Relation) -> Result<Relation> {
    if a.schema().len() != b.schema().len() {
        return Err(Error::ArityMismatch {
            expected: a.schema().len(),
            actual: b.schema().len(),
        });
    }
    let mut counts: FxHashMap<Tuple, usize> = FxHashMap::default();
    for row in b.rows() {
        *counts.entry(row.clone()).or_insert(0) += 1;
    }
    let mut rows = Vec::new();
    for row in a.rows() {
        match counts.get_mut(row) {
            Some(n) if *n > 0 => *n -= 1,
            _ => rows.push(row.clone()),
        }
    }
    Ok(Relation::from_parts(a.schema().clone(), rows))
}

/// Append computed columns to every tuple (generalized extend/map).
pub fn extend(rel: &Relation, items: &[(ScalarExpr, String)]) -> Result<Relation> {
    let schema = rel.schema();
    let extra: Vec<Field> = items
        .iter()
        .map(|(_, n)| Field::unqualified(n.clone(), DataType::Int))
        .collect();
    let out_schema = schema.extend_computed(&extra);
    let bound: Vec<_> = items
        .iter()
        .map(|(e, _)| e.bind(&[schema]))
        .collect::<Result<Vec<_>>>()?;
    let mut rows = Vec::with_capacity(rel.len());
    for row in rel.rows() {
        let mut out: Vec<Value> = row.to_vec();
        for b in &bound {
            out.push(b.eval(&[row])?);
        }
        rows.push(out.into_boxed_slice());
    }
    Ok(Relation::from_parts(out_schema, rows))
}

/// Sort by a list of `(column, ascending)` keys under the total value
/// order (NULLs first ascending). Relations are multisets — sorting is a
/// presentation operator (SQL `ORDER BY`); the sort is stable.
pub fn sort_by(rel: &Relation, keys: &[(ColumnRef, bool)]) -> Result<Relation> {
    let schema = rel.schema();
    let cols: Vec<(usize, bool)> = keys
        .iter()
        .map(|(c, asc)| c.resolve_in(schema).map(|i| (i, *asc)))
        .collect::<Result<Vec<_>>>()?;
    let mut rows = rel.rows().to_vec();
    rows.sort_by(|a, b| {
        for &(i, asc) in &cols {
            let o = a[i].total_cmp(&b[i]);
            let o = if asc { o } else { o.reverse() };
            if o != std::cmp::Ordering::Equal {
                return o;
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(Relation::from_parts(schema.clone(), rows))
}

/// Keep the first `n` tuples (SQL `LIMIT` — deterministic only after a
/// sort).
pub fn limit(rel: &Relation, n: usize) -> Relation {
    let rows = rel.rows().iter().take(n).cloned().collect();
    Relation::from_parts(rel.schema().clone(), rows)
}

/// Drop the named columns (complement of projection). Used to strip
/// auxiliary count columns after subquery selections, per the π\[A\] step
/// of Table 1's NOT EXISTS row.
pub fn drop_columns(rel: &Relation, names: &[&str]) -> Result<Relation> {
    let schema = rel.schema();
    let mut keep: Vec<usize> = Vec::new();
    'outer: for (i, f) in schema.fields().iter().enumerate() {
        for n in names {
            if f.qualifier.is_empty() && f.name == *n {
                continue 'outer;
            }
        }
        keep.push(i);
    }
    let out_schema = Schema::new(keep.iter().map(|&i| schema.field(i).clone()).collect());
    let rows = rel
        .rows()
        .iter()
        .map(|row| keep.iter().map(|&i| row[i].clone()).collect::<Tuple>())
        .collect();
    Ok(Relation::from_parts(out_schema, rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use crate::relation::RelationBuilder;
    use crate::schema::DataType;

    fn t() -> Relation {
        RelationBuilder::new("T")
            .column("a", DataType::Int)
            .column("b", DataType::Int)
            .row(vec![1.into(), 10.into()])
            .row(vec![2.into(), 20.into()])
            .row(vec![2.into(), 20.into()])
            .row(vec![Value::Null, 30.into()])
            .build()
            .unwrap()
    }

    #[test]
    fn select_truncates_unknown() {
        let r = select(&t(), &col("a").ge(lit(1))).unwrap();
        // NULL row is discarded, both duplicates kept.
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn project_computes_and_names() {
        let r = project(&t(), &[(col("a").add(col("b")), Some("s".into()))]).unwrap();
        assert_eq!(r.schema().field(0).name, "s");
        assert_eq!(r.rows()[0][0], Value::Int(11));
        assert!(r.rows()[3][0].is_null());
    }

    #[test]
    fn project_rejects_duplicate_names() {
        let items = vec![
            (col("a"), Some("x".to_string())),
            (col("b"), Some("x".to_string())),
        ];
        assert!(project(&t(), &items).is_err());
    }

    #[test]
    fn distinct_collapses_duplicates_and_nulls() {
        let r = distinct(&t());
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn difference_is_monus() {
        let a = t();
        let b = RelationBuilder::new("T")
            .column("a", DataType::Int)
            .column("b", DataType::Int)
            .row(vec![2.into(), 20.into()])
            .build()
            .unwrap();
        let d = difference(&a, &b).unwrap();
        // One of the two duplicate (2,20) rows survives.
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn union_all_keeps_duplicates() {
        let r = union_all(&t(), &t()).unwrap();
        assert_eq!(r.len(), 8);
    }

    #[test]
    fn extend_appends_columns() {
        let r = extend(&t(), &[(col("a").mul(lit(2)), "a2".into())]).unwrap();
        assert_eq!(r.schema().len(), 3);
        assert_eq!(r.rows()[0][2], Value::Int(2));
    }

    #[test]
    fn sort_by_orders_with_nulls_first_and_is_stable() {
        let r = sort_by(
            &t(),
            &[
                (ColumnRef::parse("T.a"), true),
                (ColumnRef::parse("T.b"), false),
            ],
        )
        .unwrap();
        let firsts: Vec<_> = r.rows().iter().map(|row| row[0].clone()).collect();
        assert!(firsts[0].is_null());
        assert_eq!(firsts[1], Value::Int(1));
        // Descending secondary key.
        let r = sort_by(&t(), &[(ColumnRef::parse("T.b"), false)]).unwrap();
        assert_eq!(r.rows()[0][1], Value::Int(30));
    }

    #[test]
    fn limit_truncates() {
        assert_eq!(limit(&t(), 2).len(), 2);
        assert_eq!(limit(&t(), 100).len(), 4);
        assert_eq!(limit(&t(), 0).len(), 0);
    }

    #[test]
    fn drop_columns_removes_computed() {
        let r = extend(&t(), &[(lit(1), "cnt".into())]).unwrap();
        let r = drop_columns(&r, &["cnt"]).unwrap();
        assert_eq!(r.schema().len(), 2);
    }
}
