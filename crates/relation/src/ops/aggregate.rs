//! Hash group-by, the aggregation operator of the join-unnesting baseline.
//!
//! The GMDJ operator in `gmdj-core` does *not* use this operator — it keeps
//! per-base-tuple accumulators instead. `group_by` exists for (a) the
//! aggregate-then-join unnesting rewrites the paper compares against and
//! (b) plain grouped queries in the SQL front end.

use crate::agg::NamedAgg;
use crate::error::Result;
use crate::fxhash::FxHashMap;
use crate::index::{key_of, Key};
use crate::relation::{Relation, Tuple};
use crate::schema::{ColumnRef, Schema};

/// γ\[keys; aggs\](rel) — SQL GROUP BY with grouping equality (NULL keys
/// form one group). With no keys, produces exactly one row even over the
/// empty input (global aggregation).
pub fn group_by(rel: &Relation, keys: &[ColumnRef], aggs: &[NamedAgg]) -> Result<Relation> {
    let schema = rel.schema();
    let key_cols: Vec<usize> = keys
        .iter()
        .map(|k| k.resolve_in(schema))
        .collect::<Result<Vec<_>>>()?;
    let bound: Vec<_> = aggs
        .iter()
        .map(|a| a.bind(&[schema]))
        .collect::<Result<Vec<_>>>()?;

    let mut out_fields = Vec::with_capacity(keys.len() + aggs.len());
    for &c in &key_cols {
        out_fields.push(schema.field(c).clone());
    }
    let out_schema = Schema::new(out_fields)
        .extend_computed(&aggs.iter().map(NamedAgg::output_field).collect::<Vec<_>>());

    // Group index: key -> position in `groups`.
    let mut index: FxHashMap<Key, usize> = FxHashMap::default();
    let mut groups: Vec<(Key, Vec<crate::agg::Accumulator>)> = Vec::new();

    if keys.is_empty() {
        // Global aggregation always yields one group.
        groups.push((
            Box::new([]),
            bound.iter().map(|b| b.accumulator()).collect(),
        ));
    }

    for row in rel.rows() {
        let gi = if keys.is_empty() {
            0
        } else {
            let key = key_of(row, &key_cols);
            match index.get(&key) {
                Some(&gi) => gi,
                None => {
                    let gi = groups.len();
                    index.insert(key.clone(), gi);
                    groups.push((key, bound.iter().map(|b| b.accumulator()).collect()));
                    gi
                }
            }
        };
        let accs = &mut groups[gi].1;
        for (b, acc) in bound.iter().zip(accs.iter_mut()) {
            b.update(acc, &[row])?;
        }
    }

    let rows: Vec<Tuple> = groups
        .into_iter()
        .map(|(key, accs)| {
            let mut out = Vec::with_capacity(key.len() + accs.len());
            out.extend(key.iter().cloned());
            out.extend(accs.iter().map(|a| a.finish()));
            out.into_boxed_slice()
        })
        .collect();
    Ok(Relation::from_parts(out_schema, rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::{AggFunc, NamedAgg};
    use crate::expr::col;
    use crate::relation::RelationBuilder;
    use crate::schema::DataType;
    use crate::value::Value;

    fn flows() -> Relation {
        RelationBuilder::new("F")
            .column("proto", DataType::Str)
            .column("bytes", DataType::Int)
            .row(vec!["HTTP".into(), 12.into()])
            .row(vec!["HTTP".into(), 36.into()])
            .row(vec!["FTP".into(), 48.into()])
            .row(vec![Value::Null, 5.into()])
            .row(vec![Value::Null, 6.into()])
            .build()
            .unwrap()
    }

    #[test]
    fn groups_by_key_including_null_group() {
        let r = group_by(
            &flows(),
            &[ColumnRef::parse("F.proto")],
            &[
                NamedAgg::count_star("cnt"),
                NamedAgg::sum(col("F.bytes"), "total"),
            ],
        )
        .unwrap();
        assert_eq!(r.len(), 3);
        let rows = r.sorted_rows();
        // NULL group first under total order.
        assert!(rows[0][0].is_null());
        assert_eq!(rows[0][1], Value::Int(2));
        assert_eq!(rows[0][2], Value::Int(11));
    }

    #[test]
    fn global_aggregate_over_empty_input_yields_one_row() {
        let empty = RelationBuilder::new("F")
            .column("bytes", DataType::Int)
            .build()
            .unwrap();
        let r = group_by(
            &empty,
            &[],
            &[
                NamedAgg::count_star("cnt"),
                NamedAgg::new(AggFunc::Max, col("bytes"), "m"),
            ],
        )
        .unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.rows()[0][0], Value::Int(0));
        assert!(r.rows()[0][1].is_null());
    }

    #[test]
    fn keyed_aggregate_over_empty_input_yields_no_rows() {
        let empty = RelationBuilder::new("F")
            .column("proto", DataType::Str)
            .column("bytes", DataType::Int)
            .build()
            .unwrap();
        let r = group_by(
            &empty,
            &[ColumnRef::parse("proto")],
            &[NamedAgg::count_star("cnt")],
        )
        .unwrap();
        assert!(r.is_empty());
    }

    #[test]
    fn avg_and_min() {
        let r = group_by(
            &flows(),
            &[],
            &[
                NamedAgg::new(AggFunc::Avg, col("bytes"), "a"),
                NamedAgg::new(AggFunc::Min, col("bytes"), "m"),
            ],
        )
        .unwrap();
        assert_eq!(
            r.rows()[0][0],
            Value::Float((12 + 36 + 48 + 5 + 6) as f64 / 5.0)
        );
        assert_eq!(r.rows()[0][1], Value::Int(5));
    }
}
