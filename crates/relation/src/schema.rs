//! Schemas with qualified attribute names.
//!
//! Attribute references in the paper are always qualifier-dotted
//! (`F.StartTime`, `H.EndInterval`). A [`Schema`] stores per-field
//! qualifiers so that renamed relation instances (`Flow → F`) resolve
//! correctly, including self-joins of the same base table under different
//! qualifiers (`Flow → F1`, `Flow → F2` in Example 2.3).

use std::fmt;
use std::sync::Arc;

use crate::error::{Error, Result};

/// Static types carried by schemas. Values are dynamically typed at run
/// time; the schema type is advisory (used by the data generators and the
/// SQL front end for diagnostics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    Int,
    Float,
    Str,
    Bool,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => write!(f, "INT"),
            DataType::Float => write!(f, "FLOAT"),
            DataType::Str => write!(f, "STR"),
            DataType::Bool => write!(f, "BOOL"),
        }
    }
}

/// A single attribute of a relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Relation qualifier, e.g. `F` in `F.StartTime`. Empty string means
    /// unqualified (computed columns such as aggregate outputs).
    pub qualifier: String,
    /// Attribute name.
    pub name: String,
    /// Advisory type.
    pub data_type: DataType,
}

impl Field {
    /// Construct a qualified field.
    pub fn new(qualifier: impl Into<String>, name: impl Into<String>, data_type: DataType) -> Self {
        Field {
            qualifier: qualifier.into(),
            name: name.into(),
            data_type,
        }
    }

    /// Construct an unqualified field (computed columns).
    pub fn unqualified(name: impl Into<String>, data_type: DataType) -> Self {
        Field {
            qualifier: String::new(),
            name: name.into(),
            data_type,
        }
    }

    /// `qualifier.name`, or bare `name` when unqualified.
    pub fn qualified_name(&self) -> String {
        if self.qualifier.is_empty() {
            self.name.clone()
        } else {
            format!("{}.{}", self.qualifier, self.name)
        }
    }

    /// Case-sensitive match against a reference that may or may not carry a
    /// qualifier.
    fn matches(&self, qualifier: Option<&str>, name: &str) -> bool {
        match qualifier {
            Some(q) => self.qualifier == q && self.name == name,
            None => self.name == name,
        }
    }
}

/// An ordered list of fields describing the tuples of a [`crate::Relation`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Build a schema from fields.
    pub fn new(fields: Vec<Field>) -> Arc<Self> {
        Arc::new(Schema { fields })
    }

    /// Empty schema (zero attributes). Used for the seed GMDJ
    /// `MD(B, ∅, {{}}, true)` in Algorithm SubqueryToGMDJ.
    pub fn empty() -> Arc<Self> {
        Arc::new(Schema { fields: Vec::new() })
    }

    /// Convenience: schema where all fields share one qualifier.
    pub fn qualified(qualifier: &str, columns: &[(&str, DataType)]) -> Arc<Self> {
        Schema::new(
            columns
                .iter()
                .map(|(n, t)| Field::new(qualifier, *n, *t))
                .collect(),
        )
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when the schema has no attributes.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// The fields in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Field at position `i`.
    pub fn field(&self, i: usize) -> &Field {
        &self.fields[i]
    }

    /// Resolve a possibly-qualified reference to a column index.
    ///
    /// Unqualified references must be unique across the schema, matching
    /// SQL scoping rules.
    pub fn resolve(&self, qualifier: Option<&str>, name: &str) -> Result<usize> {
        let mut found: Option<usize> = None;
        for (i, f) in self.fields.iter().enumerate() {
            if f.matches(qualifier, name) {
                if found.is_some() {
                    return Err(Error::AmbiguousColumn {
                        name: display_ref(qualifier, name),
                        candidates: self
                            .fields
                            .iter()
                            .filter(|f| f.matches(qualifier, name))
                            .map(Field::qualified_name)
                            .collect(),
                    });
                }
                found = Some(i);
            }
        }
        found.ok_or_else(|| Error::UnknownColumn {
            name: display_ref(qualifier, name),
            in_scope: self.fields.iter().map(Field::qualified_name).collect(),
        })
    }

    /// True iff the reference resolves (unambiguously) in this schema.
    pub fn contains(&self, qualifier: Option<&str>, name: &str) -> bool {
        self.resolve(qualifier, name).is_ok()
    }

    /// A copy of this schema with every field's qualifier replaced.
    /// Implements the paper's renaming `Flow → F`.
    pub fn with_qualifier(&self, qualifier: &str) -> Arc<Schema> {
        Schema::new(
            self.fields
                .iter()
                .map(|f| Field::new(qualifier, f.name.clone(), f.data_type))
                .collect(),
        )
    }

    /// Concatenate two schemas (join output). Errors on duplicate qualified
    /// names, which callers must avoid by renaming (footnote 1 in the
    /// paper).
    pub fn concat(&self, other: &Schema) -> Result<Arc<Schema>> {
        let mut fields = self.fields.clone();
        for f in &other.fields {
            if fields
                .iter()
                .any(|g| g.qualifier == f.qualifier && g.name == f.name)
            {
                return Err(Error::DuplicateColumn {
                    name: f.qualified_name(),
                });
            }
            fields.push(f.clone());
        }
        Ok(Schema::new(fields))
    }

    /// Extend with computed (unqualified) fields, renaming on collision by
    /// appending `_2`, `_3`, … as the paper's footnote 1 allows.
    pub fn extend_computed(&self, extra: &[Field]) -> Arc<Schema> {
        let mut fields = self.fields.clone();
        for f in extra {
            let mut candidate = f.clone();
            let mut n = 1usize;
            while fields
                .iter()
                .any(|g| g.qualifier == candidate.qualifier && g.name == candidate.name)
            {
                n += 1;
                candidate.name = format!("{}_{n}", f.name);
            }
            fields.push(candidate);
        }
        Schema::new(fields)
    }

    /// All qualified names, for diagnostics.
    pub fn qualified_names(&self) -> Vec<String> {
        self.fields.iter().map(Field::qualified_name).collect()
    }

    /// The set of distinct qualifiers appearing in this schema.
    pub fn qualifiers(&self) -> Vec<&str> {
        let mut qs: Vec<&str> = Vec::new();
        for f in &self.fields {
            if !f.qualifier.is_empty() && !qs.contains(&f.qualifier.as_str()) {
                qs.push(&f.qualifier);
            }
        }
        qs
    }
}

fn display_ref(qualifier: Option<&str>, name: &str) -> String {
    match qualifier {
        Some(q) => format!("{q}.{name}"),
        None => name.to_string(),
    }
}

/// A parsed attribute reference (`F.StartTime` or bare `StartTime`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColumnRef {
    pub qualifier: Option<String>,
    pub name: String,
}

impl ColumnRef {
    /// Parse `"Q.name"` or `"name"`.
    pub fn parse(s: &str) -> Self {
        match s.split_once('.') {
            Some((q, n)) => ColumnRef {
                qualifier: Some(q.to_string()),
                name: n.to_string(),
            },
            None => ColumnRef {
                qualifier: None,
                name: s.to_string(),
            },
        }
    }

    /// Fully qualified constructor.
    pub fn qualified(qualifier: impl Into<String>, name: impl Into<String>) -> Self {
        ColumnRef {
            qualifier: Some(qualifier.into()),
            name: name.into(),
        }
    }

    /// Unqualified constructor.
    pub fn bare(name: impl Into<String>) -> Self {
        ColumnRef {
            qualifier: None,
            name: name.into(),
        }
    }

    /// Resolve in a schema.
    pub fn resolve_in(&self, schema: &Schema) -> Result<usize> {
        schema.resolve(self.qualifier.as_deref(), &self.name)
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.qualifier {
            Some(q) => write!(f, "{q}.{}", self.name),
            None => write!(f, "{}", self.name),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow() -> Arc<Schema> {
        Schema::qualified(
            "F",
            &[
                ("SourceIP", DataType::Str),
                ("DestIP", DataType::Str),
                ("StartTime", DataType::Int),
                ("NumBytes", DataType::Int),
            ],
        )
    }

    #[test]
    fn resolve_qualified_and_bare() {
        let s = flow();
        assert_eq!(s.resolve(Some("F"), "DestIP").unwrap(), 1);
        assert_eq!(s.resolve(None, "NumBytes").unwrap(), 3);
        assert!(s.resolve(Some("G"), "DestIP").is_err());
        assert!(s.resolve(None, "Nope").is_err());
    }

    #[test]
    fn ambiguous_bare_reference_errors() {
        let a = flow();
        let b = flow().with_qualifier("G");
        let joined = a.concat(&b).unwrap();
        assert!(matches!(
            joined.resolve(None, "DestIP"),
            Err(Error::AmbiguousColumn { .. })
        ));
        assert_eq!(joined.resolve(Some("G"), "DestIP").unwrap(), 5);
    }

    #[test]
    fn concat_rejects_duplicates() {
        let a = flow();
        assert!(matches!(
            a.concat(&flow()),
            Err(Error::DuplicateColumn { .. })
        ));
    }

    #[test]
    fn rename_changes_qualifier() {
        let s = flow().with_qualifier("F2");
        assert!(s.resolve(Some("F"), "DestIP").is_err());
        assert_eq!(s.resolve(Some("F2"), "DestIP").unwrap(), 1);
    }

    #[test]
    fn extend_computed_renames_on_collision() {
        let s = Schema::new(vec![Field::unqualified("cnt", DataType::Int)]);
        let s2 = s.extend_computed(&[Field::unqualified("cnt", DataType::Int)]);
        assert_eq!(s2.field(1).name, "cnt_2");
    }

    #[test]
    fn column_ref_parse() {
        let r = ColumnRef::parse("F.StartTime");
        assert_eq!(r.qualifier.as_deref(), Some("F"));
        assert_eq!(r.name, "StartTime");
        let r = ColumnRef::parse("cnt");
        assert_eq!(r.qualifier, None);
    }
}
