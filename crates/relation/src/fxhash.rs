//! A fast, non-cryptographic hasher for hot hash maps.
//!
//! The default std hasher (SipHash 1-3) is robust but slow for the short
//! integer-dominated keys this engine hashes billions of times in the
//! benchmark sweeps. This is the well-known Fx algorithm (as used by rustc)
//! implemented locally to avoid an extra dependency; HashDoS resistance is
//! irrelevant for a benchmark engine over generated data.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with the Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with the Fx hasher.
pub type FxHashSet<K> = HashSet<K, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Hash a string's bytes with [`FxHasher`] — the precomputed hash code
/// cached by batch decoding and the typed string key index, so repeated
/// probes of the same interned value never rehash its bytes.
#[inline]
pub fn hash_str(s: &str) -> u64 {
    let mut h = FxHasher::default();
    h.write(s.as_bytes());
    h.finish()
}

/// Fx: multiply-and-rotate word-at-a-time hashing.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
            self.add_to_hash(rest.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinguishes_values() {
        fn h(x: u64) -> u64 {
            let mut hasher = FxHasher::default();
            hasher.write_u64(x);
            hasher.finish()
        }
        assert_ne!(h(0), h(1));
        assert_ne!(h(1), h(2));
        assert_eq!(h(42), h(42));
    }

    #[test]
    fn byte_streams_with_different_lengths_differ() {
        fn h(b: &[u8]) -> u64 {
            let mut hasher = FxHasher::default();
            hasher.write(b);
            hasher.finish()
        }
        assert_ne!(h(b"ab"), h(b"ab\0"));
        assert_eq!(h(b"hello"), h(b"hello"));
    }

    #[test]
    fn usable_as_map() {
        let mut m: FxHashMap<i64, i64> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, i * 2);
        }
        assert_eq!(m[&500], 1000);
        assert_eq!(m.len(), 1000);
    }
}
