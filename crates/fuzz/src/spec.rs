//! Structured fuzz cases: randomized catalogs plus a query specification
//! that renders to SQL text.
//!
//! The generator builds a [`QuerySpec`] (not SQL directly) so the
//! shrinker can prune subquery nodes and simplify predicates
//! structurally, re-rendering valid SQL after every mutation. The SQL
//! text is what actually enters the pipeline under test — the harness
//! exercises `gmdj_sql` parse → lower exactly like a user query.

use std::fmt::Write as _;

use gmdj_core::exec::MemoryCatalog;
use gmdj_relation::relation::RelationBuilder;
use gmdj_relation::schema::DataType;
use gmdj_relation::value::Value;

/// One base table: named integer columns, rows of `Option<i64>` where
/// `None` is SQL NULL. Keeping the domain integral keeps comparisons,
/// grouping, and aggregation meaningful while staying byte-stable in the
/// corpus format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSpec {
    pub name: String,
    pub columns: Vec<String>,
    pub rows: Vec<Vec<Option<i64>>>,
}

impl TableSpec {
    /// Empty table.
    pub fn new(name: impl Into<String>, columns: &[&str]) -> Self {
        TableSpec {
            name: name.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }
}

/// A fully self-contained differential test case. `spec` is present for
/// generated cases (enabling structural shrinking); replayed corpus cases
/// carry only the SQL text.
#[derive(Debug, Clone)]
pub struct FuzzCase {
    /// Seed this case was generated from (provenance only — after
    /// shrinking, the tables and SQL are authoritative).
    pub seed: u64,
    pub tables: Vec<TableSpec>,
    pub sql: String,
    pub spec: Option<QuerySpec>,
}

impl FuzzCase {
    /// Materialize the catalog the query runs against.
    pub fn catalog(&self) -> MemoryCatalog {
        let mut catalog = MemoryCatalog::new();
        for t in &self.tables {
            let mut b = RelationBuilder::new(t.name.as_str());
            for c in &t.columns {
                b = b.column(c.as_str(), DataType::Int);
            }
            for row in &t.rows {
                b = b.row(
                    row.iter()
                        .map(|v| v.map(Value::Int).unwrap_or(Value::Null))
                        .collect(),
                );
            }
            // Int-only columns and matching arities by construction.
            catalog = catalog.with(t.name.clone(), b.build().expect("well-formed table spec"));
        }
        catalog
    }

    /// Re-render SQL from the structured spec (after shrinking).
    pub fn sync_sql(&mut self) {
        if let Some(spec) = &self.spec {
            self.sql = spec.to_sql();
        }
    }

    /// Total row count across tables the query actually references — the
    /// size figure shrinking minimizes and reports.
    pub fn referenced_rows(&self) -> usize {
        let referenced = self.referenced_tables();
        self.tables
            .iter()
            .filter(|t| referenced.contains(&t.name))
            .map(|t| t.rows.len())
            .sum()
    }

    /// Names of tables mentioned in the query. Falls back to "all tables"
    /// for replayed cases without a structured spec.
    pub fn referenced_tables(&self) -> Vec<String> {
        match &self.spec {
            Some(spec) => spec.referenced_tables(),
            None => self.tables.iter().map(|t| t.name.clone()).collect(),
        }
    }
}

/// Comparison operators of the SQL subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl Op {
    pub const ALL: [Op; 6] = [Op::Eq, Op::Ne, Op::Lt, Op::Le, Op::Gt, Op::Ge];

    pub fn as_sql(self) -> &'static str {
        match self {
            Op::Eq => "=",
            Op::Ne => "<>",
            Op::Lt => "<",
            Op::Le => "<=",
            Op::Gt => ">",
            Op::Ge => ">=",
        }
    }
}

/// Aggregate functions usable in scalar subqueries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Agg {
    CountStar,
    Count,
    Sum,
    Min,
    Max,
    Avg,
}

impl Agg {
    pub const ALL: [Agg; 6] = [
        Agg::CountStar,
        Agg::Count,
        Agg::Sum,
        Agg::Min,
        Agg::Max,
        Agg::Avg,
    ];
}

/// A column reference `alias.column` into some enclosing scope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColRef {
    pub alias: String,
    pub column: String,
}

impl ColRef {
    pub fn new(alias: impl Into<String>, column: impl Into<String>) -> Self {
        ColRef {
            alias: alias.into(),
            column: column.into(),
        }
    }

    fn render(&self) -> String {
        format!("{}.{}", self.alias, self.column)
    }
}

/// Left operand of a comparison-shaped subquery construct: a column of an
/// enclosing block or an integer/NULL literal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Operand {
    Col(ColRef),
    Lit(Option<i64>),
}

impl Operand {
    fn render(&self) -> String {
        match self {
            Operand::Col(c) => c.render(),
            Operand::Lit(Some(n)) => n.to_string(),
            Operand::Lit(None) => "NULL".to_string(),
        }
    }
}

/// One subquery block: `SELECT … FROM table alias WHERE pred`. What the
/// block outputs is decided by the enclosing construct (whole rows for
/// EXISTS, `alias.output` for IN/quantified, `f(alias.output)` for the
/// aggregate comparison).
#[derive(Debug, Clone, PartialEq)]
pub struct SubSpec {
    pub table: String,
    pub alias: String,
    pub output: String,
    pub pred: Pred,
}

/// Predicate grammar of Section 2.1 — every SQL subquery construct the
/// paper's Theorem 3.5 covers, plus flat atoms and boolean structure.
#[derive(Debug, Clone, PartialEq)]
pub enum Pred {
    True,
    /// Flat comparison between scope columns / literals.
    Cmp {
        left: Operand,
        op: Op,
        right: Operand,
    },
    IsNull {
        col: ColRef,
        negated: bool,
    },
    /// `[NOT] EXISTS (SELECT * FROM …)`.
    Exists {
        negated: bool,
        sub: Box<SubSpec>,
    },
    /// `x [NOT] IN (SELECT a.c FROM …)`.
    In {
        left: Operand,
        negated: bool,
        sub: Box<SubSpec>,
    },
    /// `x op SOME/ALL (SELECT a.c FROM …)`.
    Quant {
        left: Operand,
        op: Op,
        all: bool,
        sub: Box<SubSpec>,
    },
    /// `x op (SELECT f(a.c) FROM …)` — scalar aggregate comparison
    /// (always exactly one row, so it is runtime-safe by construction).
    AggCmp {
        left: Operand,
        op: Op,
        func: Agg,
        sub: Box<SubSpec>,
    },
    And(Box<Pred>, Box<Pred>),
    Or(Box<Pred>, Box<Pred>),
    Not(Box<Pred>),
}

impl Pred {
    fn render(&self, out: &mut String) {
        match self {
            Pred::True => out.push_str("TRUE"),
            Pred::Cmp { left, op, right } => {
                let _ = write!(out, "{} {} {}", left.render(), op.as_sql(), right.render());
            }
            Pred::IsNull { col, negated } => {
                let _ = write!(
                    out,
                    "{} IS {}NULL",
                    col.render(),
                    if *negated { "NOT " } else { "" }
                );
            }
            Pred::Exists { negated, sub } => {
                let _ = write!(
                    out,
                    "{}EXISTS (SELECT * FROM {} {} WHERE ",
                    if *negated { "NOT " } else { "" },
                    sub.table,
                    sub.alias
                );
                sub.pred.render(out);
                out.push(')');
            }
            Pred::In { left, negated, sub } => {
                let _ = write!(
                    out,
                    "{} {}IN (SELECT {}.{} FROM {} {} WHERE ",
                    left.render(),
                    if *negated { "NOT " } else { "" },
                    sub.alias,
                    sub.output,
                    sub.table,
                    sub.alias
                );
                sub.pred.render(out);
                out.push(')');
            }
            Pred::Quant { left, op, all, sub } => {
                let _ = write!(
                    out,
                    "{} {} {} (SELECT {}.{} FROM {} {} WHERE ",
                    left.render(),
                    op.as_sql(),
                    if *all { "ALL" } else { "SOME" },
                    sub.alias,
                    sub.output,
                    sub.table,
                    sub.alias
                );
                sub.pred.render(out);
                out.push(')');
            }
            Pred::AggCmp {
                left,
                op,
                func,
                sub,
            } => {
                let call = match func {
                    Agg::CountStar => "COUNT(*)".to_string(),
                    Agg::Count => format!("COUNT({}.{})", sub.alias, sub.output),
                    Agg::Sum => format!("SUM({}.{})", sub.alias, sub.output),
                    Agg::Min => format!("MIN({}.{})", sub.alias, sub.output),
                    Agg::Max => format!("MAX({}.{})", sub.alias, sub.output),
                    Agg::Avg => format!("AVG({}.{})", sub.alias, sub.output),
                };
                let _ = write!(
                    out,
                    "{} {} (SELECT {} FROM {} {} WHERE ",
                    left.render(),
                    op.as_sql(),
                    call,
                    sub.table,
                    sub.alias
                );
                sub.pred.render(out);
                out.push(')');
            }
            Pred::And(a, b) => {
                out.push('(');
                a.render(out);
                out.push_str(" AND ");
                b.render(out);
                out.push(')');
            }
            Pred::Or(a, b) => {
                out.push('(');
                a.render(out);
                out.push_str(" OR ");
                b.render(out);
                out.push(')');
            }
            Pred::Not(p) => {
                out.push_str("NOT (");
                p.render(out);
                out.push(')');
            }
        }
    }

    /// Depth of subquery nesting contributed by this predicate.
    pub fn nesting_depth(&self) -> usize {
        match self {
            Pred::True | Pred::Cmp { .. } | Pred::IsNull { .. } => 0,
            Pred::Exists { sub, .. }
            | Pred::In { sub, .. }
            | Pred::Quant { sub, .. }
            | Pred::AggCmp { sub, .. } => 1 + sub.pred.nesting_depth(),
            Pred::And(a, b) | Pred::Or(a, b) => a.nesting_depth().max(b.nesting_depth()),
            Pred::Not(p) => p.nesting_depth(),
        }
    }

    fn collect_tables(&self, out: &mut Vec<String>) {
        match self {
            Pred::True | Pred::Cmp { .. } | Pred::IsNull { .. } => {}
            Pred::Exists { sub, .. }
            | Pred::In { sub, .. }
            | Pred::Quant { sub, .. }
            | Pred::AggCmp { sub, .. } => {
                if !out.contains(&sub.table) {
                    out.push(sub.table.clone());
                }
                sub.pred.collect_tables(out);
            }
            Pred::And(a, b) | Pred::Or(a, b) => {
                a.collect_tables(out);
                b.collect_tables(out);
            }
            Pred::Not(p) => p.collect_tables(out),
        }
    }
}

/// What the outer block projects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Projection {
    Star,
    Column(String),
    DistinctColumn(String),
}

/// The outer query block.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    pub table: String,
    pub alias: String,
    pub projection: Projection,
    pub predicate: Pred,
}

impl QuerySpec {
    /// Render the full SELECT statement.
    pub fn to_sql(&self) -> String {
        let mut out = String::new();
        match &self.projection {
            Projection::Star => out.push_str("SELECT *"),
            Projection::Column(c) => {
                let _ = write!(out, "SELECT {}.{}", self.alias, c);
            }
            Projection::DistinctColumn(c) => {
                let _ = write!(out, "SELECT DISTINCT {}.{}", self.alias, c);
            }
        }
        let _ = write!(out, " FROM {} {} WHERE ", self.table, self.alias);
        self.predicate.render(&mut out);
        out
    }

    /// Every table the query references (outer FROM plus all subqueries).
    pub fn referenced_tables(&self) -> Vec<String> {
        let mut out = vec![self.table.clone()];
        self.predicate.collect_tables(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_parseable_sql() {
        let sub = SubSpec {
            table: "R".into(),
            alias: "R1".into(),
            output: "a".into(),
            pred: Pred::Cmp {
                left: Operand::Col(ColRef::new("R1", "a")),
                op: Op::Eq,
                right: Operand::Col(ColRef::new("B0", "a")),
            },
        };
        let spec = QuerySpec {
            table: "B".into(),
            alias: "B0".into(),
            projection: Projection::Star,
            predicate: Pred::Not(Box::new(Pred::In {
                left: Operand::Col(ColRef::new("B0", "b")),
                negated: true,
                sub: Box::new(sub),
            })),
        };
        let sql = spec.to_sql();
        assert_eq!(
            sql,
            "SELECT * FROM B B0 WHERE NOT (B0.b NOT IN \
             (SELECT R1.a FROM R R1 WHERE R1.a = B0.a))"
        );
        gmdj_sql::parse_query(&sql).expect("rendered SQL must parse");
    }

    #[test]
    fn catalog_builds_with_nulls() {
        let case = FuzzCase {
            seed: 0,
            tables: vec![TableSpec {
                name: "B".into(),
                columns: vec!["a".into(), "b".into()],
                rows: vec![vec![Some(1), None], vec![None, Some(3)]],
            }],
            sql: "SELECT * FROM B B0 WHERE TRUE".into(),
            spec: None,
        };
        let catalog = case.catalog();
        use gmdj_core::exec::TableProvider;
        let rel = catalog.table("B").unwrap();
        assert_eq!(rel.len(), 2);
        assert!(rel.rows()[0][1].is_null());
    }
}
