//! Hand-rolled deterministic PRNG for the fuzzer.
//!
//! SplitMix64 (Steele, Lea & Flood): 64 bits of state, full-period,
//! excellent diffusion, and — critically for a fuzzing corpus — the exact
//! same sequence on every platform and toolchain. No external dependency
//! is involved, so repro seeds stay valid forever.

/// SplitMix64 stream.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded stream.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 raw bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform integer in `0..n` (`n > 0`) via the multiply-shift trick
    /// (Lemire), which is deterministic and avoids modulo bias for the
    /// tiny ranges the generator uses.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Bernoulli draw: true with probability `pct`/100.
    pub fn chance(&mut self, pct: u64) -> bool {
        self.below(100) < pct
    }

    /// Uniform element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }
}

/// Derive a per-case seed from a run seed and a case index. Mixing through
/// SplitMix64 keeps neighbouring indices uncorrelated.
pub fn case_seed(run_seed: u64, index: u64) -> u64 {
    let mut rng = SplitMix64::new(run_seed ^ index.wrapping_mul(0xA076_1D64_78BD_642F));
    rng.next_u64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_first_output() {
        // Reference value of SplitMix64 seeded with 1234567: guards
        // against accidental edits to the constants, which would silently
        // invalidate every checked-in corpus seed.
        let mut rng = SplitMix64::new(1234567);
        assert_eq!(rng.next_u64(), 6457827717110365317);
    }

    #[test]
    fn below_stays_in_range_and_covers() {
        let mut rng = SplitMix64::new(7);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let x = rng.below(5) as usize;
            assert!(x < 5);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn case_seeds_differ() {
        let a = case_seed(42, 0);
        let b = case_seed(42, 1);
        assert_ne!(a, b);
    }
}
