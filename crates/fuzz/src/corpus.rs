//! Self-contained repro files.
//!
//! A corpus case carries everything needed to replay a differential
//! check with no generator involved: the SQL text, every table as CSV,
//! and the originating seed. Failing cases additionally embed the
//! observed divergence and the span trace of the failing run (PR 2's
//! profiler output), so a repro ships with its profile.
//!
//! Format (line-oriented, `#` comments ignored):
//!
//! ```text
//! # gmdj-fuzz case v1
//! seed: 42
//! == sql
//! SELECT * FROM B B0 WHERE …
//! == table B
//! a,b
//! 1,
//! == divergence          (optional, informational)
//! strategy: gmdj-opt
//! …
//! == trace               (optional, informational)
//! {"name":"query.execute", …}
//! == end
//! ```
//!
//! Empty CSV cells are NULL; all columns are integers.

use std::fmt::Write as _;

use gmdj_relation::error::{Error, Result};

use crate::driver::{policy_label, Divergence};
use crate::spec::{FuzzCase, TableSpec};

/// Render a case (plus optional failure context) to the corpus format.
pub fn render_case(case: &FuzzCase, failure: Option<&Divergence>, trace: &[String]) -> String {
    let mut out = String::new();
    out.push_str("# gmdj-fuzz case v1\n");
    let _ = writeln!(out, "seed: {}", case.seed);
    out.push_str("== sql\n");
    let _ = writeln!(out, "{}", case.sql.trim());
    for t in &case.tables {
        let _ = writeln!(out, "== table {}", t.name);
        let _ = writeln!(out, "{}", t.columns.join(","));
        for row in &t.rows {
            let cells: Vec<String> = row
                .iter()
                .map(|v| v.map(|n| n.to_string()).unwrap_or_default())
                .collect();
            let _ = writeln!(out, "{}", cells.join(","));
        }
    }
    if let Some(d) = failure {
        out.push_str("== divergence\n");
        let _ = writeln!(out, "strategy: {}", d.strategy.label());
        let _ = writeln!(out, "policy: {}", policy_label(d.policy));
        let _ = writeln!(out, "oracle_rows: {}", d.oracle_rows);
        match d.actual_rows {
            Some(n) => {
                let _ = writeln!(out, "actual_rows: {n}");
            }
            None => out.push_str("actual_rows: error\n"),
        }
        for line in d.detail.lines() {
            let _ = writeln!(out, "# {line}");
        }
    }
    if !trace.is_empty() {
        out.push_str("== trace\n");
        for line in trace {
            let _ = writeln!(out, "{line}");
        }
    }
    out.push_str("== end\n");
    out
}

/// Parse the corpus format back into a replayable case. The
/// `divergence`/`trace` sections are informational and skipped.
pub fn parse_case(text: &str) -> Result<FuzzCase> {
    let mut seed = 0u64;
    let mut sql: Option<String> = None;
    let mut tables: Vec<TableSpec> = Vec::new();

    #[derive(PartialEq)]
    enum Section {
        Preamble,
        Sql,
        Table,
        Skip,
    }
    let mut section = Section::Preamble;
    let mut sql_lines: Vec<&str> = Vec::new();
    let mut table_header_pending = false;

    for raw in text.lines() {
        let line = raw.trim_end();
        if line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("== ") {
            // Close out a finished SQL section.
            if section == Section::Sql {
                sql = Some(sql_lines.join("\n").trim().to_string());
            }
            match rest.trim() {
                "sql" => {
                    section = Section::Sql;
                    sql_lines.clear();
                }
                "end" => {
                    section = Section::Skip;
                }
                "divergence" | "trace" => section = Section::Skip,
                other => {
                    let Some(name) = other.strip_prefix("table ") else {
                        return Err(Error::invalid(format!("unknown corpus section `{other}`")));
                    };
                    tables.push(TableSpec::new(name.trim(), &[]));
                    table_header_pending = true;
                    section = Section::Table;
                }
            }
            continue;
        }
        match section {
            Section::Preamble => {
                if let Some(v) = line.strip_prefix("seed:") {
                    seed = v
                        .trim()
                        .parse()
                        .map_err(|_| Error::invalid(format!("bad seed line `{line}`")))?;
                } else if !line.is_empty() {
                    return Err(Error::invalid(format!("unexpected preamble line `{line}`")));
                }
            }
            Section::Sql => sql_lines.push(line),
            Section::Table => {
                let table = tables.last_mut().expect("inside a table section");
                if table_header_pending {
                    table.columns = line.split(',').map(|c| c.trim().to_string()).collect();
                    table_header_pending = false;
                } else if !line.is_empty() {
                    let row: Vec<Option<i64>> = line
                        .split(',')
                        .map(|cell| {
                            let cell = cell.trim();
                            if cell.is_empty() {
                                Ok(None)
                            } else {
                                cell.parse::<i64>().map(Some).map_err(|_| {
                                    Error::invalid(format!("bad integer cell `{cell}`"))
                                })
                            }
                        })
                        .collect::<Result<_>>()?;
                    if row.len() != table.columns.len() {
                        return Err(Error::invalid(format!(
                            "row arity {} does not match {} columns of table {}",
                            row.len(),
                            table.columns.len(),
                            table.name
                        )));
                    }
                    table.rows.push(row);
                }
            }
            Section::Skip => {}
        }
    }
    if section == Section::Sql {
        sql = Some(sql_lines.join("\n").trim().to_string());
    }
    let sql = sql.ok_or_else(|| Error::invalid("corpus case has no `== sql` section"))?;
    if sql.is_empty() {
        return Err(Error::invalid("corpus case has an empty SQL section"));
    }
    Ok(FuzzCase {
        seed,
        tables,
        sql,
        spec: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{check_case, CheckOptions};
    use crate::gen::{generate_case, GenConfig};
    use crate::rng::case_seed;

    #[test]
    fn round_trips_generated_cases() {
        let cfg = GenConfig::default();
        for i in 0..25 {
            let case = generate_case(case_seed(5, i), &cfg);
            let text = render_case(&case, None, &[]);
            let back = parse_case(&text).unwrap();
            assert_eq!(back.seed, case.seed);
            assert_eq!(back.sql, case.sql);
            assert_eq!(back.tables, case.tables);
            // Replaying the round-tripped case produces the same verdict.
            let opts = CheckOptions::default();
            assert_eq!(
                check_case(&case, &opts).passed(),
                check_case(&back, &opts).passed()
            );
        }
    }

    #[test]
    fn empty_cells_are_null() {
        let text = "# gmdj-fuzz case v1\nseed: 9\n== sql\nSELECT * FROM B B0 WHERE TRUE\n\
                    == table B\na,b\n1,\n,2\n== end\n";
        let case = parse_case(text).unwrap();
        assert_eq!(case.tables[0].rows[0], vec![Some(1), None]);
        assert_eq!(case.tables[0].rows[1], vec![None, Some(2)]);
    }

    #[test]
    fn malformed_files_error() {
        assert!(parse_case("no sections at all").is_err());
        assert!(parse_case("== sql\n\n== end\n").is_err());
        assert!(parse_case("seed: x\n== sql\nSELECT 1\n== end\n").is_err());
    }
}
