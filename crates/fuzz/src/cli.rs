//! `repro fuzz` — the command-line entry point of the harness.
//!
//! ```text
//! repro fuzz --seed S --cases N [--replay FILE|DIR] [--corpus-dir DIR]
//!            [--max-shrink-checks N]
//! ```
//!
//! Generation mode runs `N` seeded cases through the differential driver;
//! every failing case is shrunk and written to the corpus directory as a
//! self-contained repro (SQL + CSV + seed + divergence + trace). Replay
//! mode re-checks existing corpus files (a single file or every `*.case`
//! in a directory). Exit status is non-zero iff any case failed.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use crate::corpus::{parse_case, render_case};
use crate::driver::{check_case, policy_label, trace_divergence, CheckOptions};
use crate::gen::{generate_case, GenConfig};
use crate::rng::case_seed;
use crate::shrink::shrink;

struct FuzzArgs {
    seed: u64,
    cases: usize,
    replay: Option<String>,
    corpus_dir: String,
    max_shrink_checks: usize,
}

const HELP: &str = "repro fuzz — differential fuzzing of the subquery pipeline

Runs seeded random nested queries through gmdj_sql parse -> lower ->
every evaluation strategy x every execution policy and diffs multiset
results against tuple-iteration semantics (the naive oracle). Failing
cases are shrunk and written as self-contained repros.

options:
  --seed N              run seed (default 42); case i uses a seed derived
                        from (seed, i), so any case replays independently
  --cases N             number of generated cases (default 500)
  --replay PATH         replay a repro file, or every *.case in a
                        directory, instead of generating
  --corpus-dir DIR      where failing repros are written
                        (default fuzz/corpus)
  --max-shrink-checks N differential checks the shrinker may spend per
                        failing case (default 2000)";

fn parse_args(args: &[String]) -> Result<FuzzArgs, String> {
    let mut out = FuzzArgs {
        seed: 42,
        cases: 500,
        replay: None,
        corpus_dir: "fuzz/corpus".into(),
        max_shrink_checks: 2000,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                out.seed = v.parse().map_err(|_| format!("bad seed `{v}`"))?;
            }
            "--cases" => {
                let v = it.next().ok_or("--cases needs a value")?;
                out.cases = v.parse().map_err(|_| format!("bad case count `{v}`"))?;
            }
            "--replay" => {
                out.replay = Some(it.next().ok_or("--replay needs a path")?.clone());
            }
            "--corpus-dir" => {
                out.corpus_dir = it.next().ok_or("--corpus-dir needs a path")?.clone();
            }
            "--max-shrink-checks" => {
                let v = it.next().ok_or("--max-shrink-checks needs a value")?;
                out.max_shrink_checks = v.parse().map_err(|_| format!("bad count `{v}`"))?;
            }
            "--help" | "-h" => {
                println!("{HELP}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown fuzz argument `{other}` (try --help)")),
        }
    }
    Ok(out)
}

/// Entry point, called by the `repro` binary for the `fuzz` subcommand.
pub fn run(args: &[String]) -> ExitCode {
    let args = match parse_args(args) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match &args.replay {
        Some(path) => replay(path),
        None => generate_and_check(&args),
    }
}

fn generate_and_check(args: &FuzzArgs) -> ExitCode {
    let cfg = GenConfig::default();
    let opts = CheckOptions::default();
    println!(
        "fuzz: {} cases from seed {} — {} strategies x {} policies vs the naive oracle",
        args.cases,
        args.seed,
        opts.strategies.len(),
        opts.policies.len()
    );
    let mut failures = 0usize;
    for i in 0..args.cases {
        let seed = case_seed(args.seed, i as u64);
        let case = generate_case(seed, &cfg);
        let report = check_case(&case, &opts);
        if report.passed() {
            if (i + 1) % 100 == 0 {
                println!("  {}/{} cases clean", i + 1, args.cases);
            }
            continue;
        }
        failures += 1;
        if let Some(err) = &report.pipeline_error {
            eprintln!("case {i} (seed {seed}): PIPELINE ERROR\n  {err}");
            write_repro(&args.corpus_dir, &case, None, &[], seed);
            continue;
        }
        let d = &report.divergences[0];
        eprintln!(
            "case {i} (seed {seed}): DIVERGENCE — {} under {} ({} vs oracle {} rows); shrinking…",
            d.strategy.label(),
            policy_label(d.policy),
            d.actual_rows
                .map(|n| n.to_string())
                .unwrap_or_else(|| "error".into()),
            d.oracle_rows
        );
        let (small, spent) = shrink(&case, &opts, args.max_shrink_checks);
        let small_report = check_case(&small, &opts);
        let sd = small_report.divergences.first().unwrap_or(d);
        let trace = trace_divergence(&small, sd);
        eprintln!(
            "  shrunk to {} referenced rows in {spent} checks: {}",
            small.referenced_rows(),
            small.sql
        );
        write_repro(&args.corpus_dir, &small, Some(sd), &trace, seed);
    }
    if failures == 0 {
        println!(
            "fuzz: all {} cases agree across every strategy and policy",
            args.cases
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "fuzz: {failures} failing case(s) — repros in {}",
            args.corpus_dir
        );
        ExitCode::FAILURE
    }
}

fn write_repro(
    dir: &str,
    case: &crate::spec::FuzzCase,
    divergence: Option<&crate::driver::Divergence>,
    trace: &[String],
    seed: u64,
) {
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("  cannot create corpus dir {dir}: {e}");
        return;
    }
    let path = Path::new(dir).join(format!("failing-{seed:016x}.case"));
    let text = render_case(case, divergence, trace);
    match std::fs::write(&path, text) {
        Ok(()) => eprintln!("  wrote {}", path.display()),
        Err(e) => eprintln!("  cannot write {}: {e}", path.display()),
    }
}

fn replay(path: &str) -> ExitCode {
    let files: Vec<PathBuf> = if Path::new(path).is_dir() {
        let mut v: Vec<PathBuf> = match std::fs::read_dir(path) {
            Ok(entries) => entries
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|x| x == "case"))
                .collect(),
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        v.sort();
        v
    } else {
        vec![PathBuf::from(path)]
    };
    if files.is_empty() {
        println!("replay: no *.case files under {path}");
        return ExitCode::SUCCESS;
    }
    let opts = CheckOptions::default();
    let mut failures = 0usize;
    for file in &files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{}: read error: {e}", file.display());
                failures += 1;
                continue;
            }
        };
        let case = match parse_case(&text) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("{}: malformed case: {e}", file.display());
                failures += 1;
                continue;
            }
        };
        let report = check_case(&case, &opts);
        if report.passed() {
            println!("{}: ok", file.display());
        } else {
            failures += 1;
            if let Some(err) = &report.pipeline_error {
                eprintln!("{}: PIPELINE ERROR — {err}", file.display());
            }
            for d in &report.divergences {
                eprintln!(
                    "{}: DIVERGENCE — {} under {}\n{}",
                    file.display(),
                    d.strategy.label(),
                    policy_label(d.policy),
                    d.detail
                );
            }
        }
    }
    if failures == 0 {
        println!("replay: {} case(s) clean", files.len());
        ExitCode::SUCCESS
    } else {
        eprintln!("replay: {failures} of {} case(s) failed", files.len());
        ExitCode::FAILURE
    }
}
