//! Automatic minimization of failing cases.
//!
//! Greedy delta debugging over the structured case: repeatedly try
//! smaller variants (drop row chunks, then single rows, prune subquery
//! nodes, simplify predicates, drop unreferenced tables) and keep any
//! variant that still fails the differential check. Terminates at a
//! local minimum or after `max_checks` oracle runs.

use crate::driver::{check_case, CheckOptions};
use crate::spec::{FuzzCase, Pred, Projection};

/// Shrink `case` (which must fail under `opts`) to a smaller failing
/// case. Returns the minimized case and the number of differential
/// checks spent.
pub fn shrink(case: &FuzzCase, opts: &CheckOptions, max_checks: usize) -> (FuzzCase, usize) {
    let mut current = case.clone();
    let mut checks = 0usize;
    let still_fails = |c: &FuzzCase, checks: &mut usize| {
        *checks += 1;
        !check_case(c, opts).passed()
    };

    // The input must fail, otherwise there is nothing to preserve.
    if !still_fails(&current, &mut checks) {
        return (current, checks);
    }

    loop {
        if checks >= max_checks {
            break;
        }
        let mut progressed = false;
        for candidate in candidates(&current) {
            if checks >= max_checks {
                break;
            }
            if still_fails(&candidate, &mut checks) {
                current = candidate;
                progressed = true;
                break; // restart candidate enumeration from the smaller case
            }
        }
        if !progressed {
            break;
        }
    }
    (current, checks)
}

/// All single-step reductions of a case, most aggressive first.
fn candidates(case: &FuzzCase) -> Vec<FuzzCase> {
    let mut out = Vec::new();

    // 1. Drop entire tables the query no longer references (their rows
    //    are dead weight in the repro).
    let referenced = case.referenced_tables();
    if case.tables.iter().any(|t| !referenced.contains(&t.name)) {
        let mut c = case.clone();
        c.tables.retain(|t| referenced.contains(&t.name));
        out.push(c);
    }

    // 2. Row reduction: halves first (fast progress on large tables),
    //    then individual rows.
    for (ti, t) in case.tables.iter().enumerate() {
        let n = t.rows.len();
        if n >= 2 {
            for (lo, hi) in [(0, n / 2), (n / 2, n)] {
                let mut c = case.clone();
                c.tables[ti].rows.drain(lo..hi);
                out.push(c);
            }
        }
    }
    for (ti, t) in case.tables.iter().enumerate() {
        for ri in 0..t.rows.len() {
            let mut c = case.clone();
            c.tables[ti].rows.remove(ri);
            out.push(c);
        }
    }

    // 3. Structural predicate reductions (generated cases only).
    if let Some(spec) = &case.spec {
        for pred in reduce_pred(&spec.predicate) {
            let mut c = case.clone();
            let s = c.spec.as_mut().unwrap();
            s.predicate = pred;
            c.sync_sql();
            out.push(c);
        }
        // 4. Projection simplification: `SELECT *` is the least surprising
        //    output shape for a repro.
        if spec.projection != Projection::Star {
            let mut c = case.clone();
            c.spec.as_mut().unwrap().projection = Projection::Star;
            c.sync_sql();
            out.push(c);
        }
    }

    // 5. NULL-ify shrink is deliberately absent: replacing NULLs with
    //    zeros can mask exactly the 3VL bugs the harness hunts.
    out
}

/// Every one-step reduction of a predicate tree: replace a node by one of
/// its children, drop a negation, or collapse a leaf to TRUE.
fn reduce_pred(p: &Pred) -> Vec<Pred> {
    let mut out = Vec::new();
    match p {
        Pred::True => {}
        Pred::Cmp { .. } | Pred::IsNull { .. } => out.push(Pred::True),
        Pred::And(a, b) | Pred::Or(a, b) => {
            out.push((**a).clone());
            out.push((**b).clone());
            for ra in reduce_pred(a) {
                out.push(match p {
                    Pred::And(_, _) => Pred::And(Box::new(ra), b.clone()),
                    _ => Pred::Or(Box::new(ra), b.clone()),
                });
            }
            for rb in reduce_pred(b) {
                out.push(match p {
                    Pred::And(_, _) => Pred::And(a.clone(), Box::new(rb)),
                    _ => Pred::Or(a.clone(), Box::new(rb)),
                });
            }
        }
        Pred::Not(inner) => {
            out.push((**inner).clone());
            for r in reduce_pred(inner) {
                out.push(Pred::Not(Box::new(r)));
            }
        }
        Pred::Exists { negated, sub } => {
            out.push(Pred::True);
            for r in reduce_pred(&sub.pred) {
                let mut s = sub.clone();
                s.pred = r;
                out.push(Pred::Exists {
                    negated: *negated,
                    sub: s,
                });
            }
        }
        Pred::In { left, negated, sub } => {
            out.push(Pred::True);
            for r in reduce_pred(&sub.pred) {
                let mut s = sub.clone();
                s.pred = r;
                out.push(Pred::In {
                    left: left.clone(),
                    negated: *negated,
                    sub: s,
                });
            }
        }
        Pred::Quant { left, op, all, sub } => {
            out.push(Pred::True);
            for r in reduce_pred(&sub.pred) {
                let mut s = sub.clone();
                s.pred = r;
                out.push(Pred::Quant {
                    left: left.clone(),
                    op: *op,
                    all: *all,
                    sub: s,
                });
            }
        }
        Pred::AggCmp {
            left,
            op,
            func,
            sub,
        } => {
            out.push(Pred::True);
            for r in reduce_pred(&sub.pred) {
                let mut s = sub.clone();
                s.pred = r;
                out.push(Pred::AggCmp {
                    left: left.clone(),
                    op: *op,
                    func: *func,
                    sub: s,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ColRef, Op, Operand, QuerySpec, SubSpec, TableSpec};

    #[test]
    fn reduce_pred_offers_children_and_true() {
        let cmp = Pred::Cmp {
            left: Operand::Col(ColRef::new("B0", "a")),
            op: Op::Eq,
            right: Operand::Lit(Some(1)),
        };
        let and = Pred::And(Box::new(cmp.clone()), Box::new(Pred::True));
        let reductions = reduce_pred(&and);
        assert!(reductions.contains(&cmp));
        assert!(reductions.contains(&Pred::True));
    }

    #[test]
    fn shrink_keeps_failure_and_reduces_rows() {
        // Failure injected via mutator: GmdjOptimized "loses" rows whose
        // first column is NULL — a classic NULL-handling bug shape.
        fn lose_nulls(
            s: gmdj_engine::strategy::Strategy,
            _p: gmdj_core::runtime::ExecPolicy,
            r: &gmdj_relation::relation::Relation,
        ) -> Option<gmdj_relation::relation::Relation> {
            if s != gmdj_engine::strategy::Strategy::GmdjOptimized {
                return None;
            }
            let rows: Vec<_> = r
                .rows()
                .iter()
                .filter(|row| !row[0].is_null())
                .cloned()
                .collect();
            Some(gmdj_relation::relation::Relation::from_parts(
                r.schema().clone(),
                rows,
            ))
        }

        let sub = SubSpec {
            table: "R".into(),
            alias: "R1".into(),
            output: "a".into(),
            pred: Pred::True,
        };
        let case = FuzzCase {
            seed: 1,
            tables: vec![
                TableSpec {
                    name: "B".into(),
                    columns: vec!["a".into(), "b".into()],
                    rows: vec![
                        vec![Some(0), Some(1)],
                        vec![None, Some(2)],
                        vec![Some(3), None],
                        vec![Some(4), Some(4)],
                        vec![None, None],
                        vec![Some(2), Some(2)],
                    ],
                },
                TableSpec {
                    name: "R".into(),
                    columns: vec!["a".into(), "b".into()],
                    rows: vec![vec![Some(1), Some(1)], vec![Some(2), None]],
                },
                TableSpec {
                    name: "S".into(),
                    columns: vec!["a".into(), "b".into()],
                    rows: vec![vec![Some(9), Some(9)]],
                },
            ],
            sql: String::new(),
            spec: Some(QuerySpec {
                table: "B".into(),
                alias: "B0".into(),
                projection: Projection::Star,
                predicate: Pred::Exists {
                    negated: false,
                    sub: Box::new(sub),
                },
            }),
        };
        let mut case = case;
        case.sync_sql();

        let opts = CheckOptions {
            mutate: Some(lose_nulls),
            ..CheckOptions::default()
        };
        assert!(!check_case(&case, &opts).passed(), "setup must fail");
        let (small, _checks) = shrink(&case, &opts, 2000);
        assert!(
            !check_case(&small, &opts).passed(),
            "shrunk case must still fail"
        );
        assert!(
            small.referenced_rows() <= 5,
            "expected <=5 referenced rows, got {} in {:?}",
            small.referenced_rows(),
            small.tables
        );
    }
}
