//! # gmdj-fuzz
//!
//! Grammar-based differential fuzzing for the whole subquery pipeline,
//! in the style of RAGS (Slutz, VLDB 1998) and SQLancer (Rigger & Su,
//! OSDI 2020): generate random nested SQL queries over random NULL-heavy
//! catalogs, run each through `gmdj_sql` parse → lower → **every**
//! evaluation strategy × **every** execution policy, and diff multiset
//! results against tuple-iteration semantics (the naive reference
//! oracle — the semantics Theorem 3.5's correctness claim is stated
//! against).
//!
//! The pieces:
//!
//! * [`rng`] — hand-rolled SplitMix64; seeds are platform-stable forever.
//! * [`spec`] — structured cases (tables + query spec) rendering to SQL.
//! * [`gen`] — seed-driven generation covering every Section 2.1
//!   construct: scalar aggregate comparison, SOME/ALL, EXISTS/NOT
//!   EXISTS, IN/NOT IN, nesting to depth 3, non-neighboring correlation,
//!   NULL literals.
//! * [`driver`] — the differential check and per-divergence span traces.
//! * [`shrink`] — greedy delta debugging to a minimal failing case.
//! * [`corpus`] — self-contained repro files (SQL + CSV + seed).
//! * [`cli`] — the `repro fuzz` subcommand.

pub mod cli;
pub mod corpus;
pub mod driver;
pub mod gen;
pub mod rng;
pub mod shrink;
pub mod spec;

pub use corpus::{parse_case, render_case};
pub use driver::{check_case, CheckOptions, CheckReport, Divergence};
pub use gen::{generate_case, GenConfig};
pub use rng::{case_seed, SplitMix64};
pub use shrink::shrink;
pub use spec::{FuzzCase, QuerySpec, TableSpec};
