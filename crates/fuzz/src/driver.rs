//! The differential driver: run one case through the full pipeline
//! (`gmdj_sql` parse → lower → every strategy × every execution policy)
//! and diff multiset results against tuple-iteration semantics.
//!
//! The oracle is [`Strategy::NaiveNestedLoop`] under the sequential
//! policy — `gmdj_engine::reference` with no smartness and no indexes,
//! i.e. the literal nested-loop semantics of Section 2 that Theorem 3.5's
//! correctness claim is stated against.
//!
//! Every policy-consuming strategy additionally runs twice per policy —
//! vectorized batch kernels on and off — and the two runs must agree on
//! the result multiset, the gated [`EvalStats`] counters, and error
//! behavior (see `gmdj_relation::batch` for the kernels' exactness
//! contract). A second sweep re-runs each policy under morsel sizes
//! {1, 7, 64, whole-relation}: morsel size is pure scheduling, so any
//! visible difference — result rows or gated counters, page accounting
//! included — is a bug. Distributed policies additionally run a third
//! twin over real socket-backed loopback sites (`gmdj_core::wire`): the
//! transport must not change the multiset, the gated counters, or the
//! closed-form network value counts. A fourth twin submits the same
//! query from two concurrent clients through a coalescing
//! [`SharedScanPool`]: cross-query scan sharing (and its identical-query
//! dedup) must be invisible — each client's multiset, gated counters,
//! and error text must match the standalone run exactly.
//!
//! [`EvalStats`]: gmdj_core::eval::EvalStats

use std::sync::Arc;
use std::time::Duration;

use gmdj_core::runtime::ExecPolicy;
use gmdj_core::shared::{SharedScanConfig, SharedScanPool};
use gmdj_core::trace::CollectingSink;
use gmdj_engine::strategy::{
    run_with_policy, run_with_policy_pooled, run_with_policy_traced, Strategy,
};
use gmdj_relation::relation::Relation;

use crate::spec::FuzzCase;

/// A hook that lets tests corrupt one strategy's result before the diff —
/// the standing proof that the harness actually catches and shrinks
/// semantic divergences (the "inject a NULL-handling bug" drill of the
/// acceptance criteria, without keeping a buggy engine around).
pub type ResultMutator = fn(Strategy, ExecPolicy, &Relation) -> Option<Relation>;

/// What to run a case against.
#[derive(Debug, Clone)]
pub struct CheckOptions {
    pub strategies: Vec<Strategy>,
    pub policies: Vec<ExecPolicy>,
    /// Test-only result corruption hook; `None` in production.
    pub mutate: Option<ResultMutator>,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            strategies: default_strategies(),
            policies: default_policies().to_vec(),
            mutate: None,
        }
    }
}

/// The Section 5 lineup plus the GMDJ ablative strategies that exercise
/// the basic translation and the cost-based rewrite selection.
pub fn default_strategies() -> Vec<Strategy> {
    let mut v = Strategy::paper_lineup().to_vec();
    v.push(Strategy::GmdjBasic);
    v.push(Strategy::GmdjCostBased);
    v
}

/// The execution policies under differential test.
pub fn default_policies() -> [ExecPolicy; 4] {
    [
        ExecPolicy::sequential(),
        ExecPolicy::parallel(2),
        ExecPolicy::parallel(8),
        ExecPolicy::distributed(3),
    ]
}

/// True when the strategy routes through the GMDJ runtime and therefore
/// actually consumes the execution policy. The reference and unnest
/// engines ignore it, so re-running them per policy is skipped.
pub fn uses_policy(s: Strategy) -> bool {
    matches!(
        s,
        Strategy::GmdjBasic
            | Strategy::GmdjOptimized
            | Strategy::GmdjBasicNoProbeIndex
            | Strategy::GmdjOptimizedNoProbeIndex
            | Strategy::GmdjCostBased
    )
}

/// Compact label for a policy (repro files, CI logs).
pub fn policy_label(p: ExecPolicy) -> String {
    use gmdj_core::runtime::ExecMode;
    match p.mode {
        ExecMode::Sequential => "seq".to_string(),
        ExecMode::Parallel { threads } => format!("par{threads}"),
        ExecMode::Distributed { sites } => format!("dist{sites}"),
    }
}

/// One observed disagreement with the oracle.
#[derive(Debug, Clone)]
pub struct Divergence {
    pub strategy: Strategy,
    pub policy: ExecPolicy,
    pub oracle_rows: usize,
    /// `None` when the strategy returned an error instead of a relation.
    pub actual_rows: Option<usize>,
    /// Human-readable detail: the two relations, or the error text.
    pub detail: String,
}

/// Everything wrong with one case. `pipeline_error` is set when the case
/// never reached the diff (SQL failed to parse/lower, or the oracle
/// itself failed) — for generated cases that is a harness bug and is
/// treated as a failure in its own right.
#[derive(Debug, Clone, Default)]
pub struct CheckReport {
    pub pipeline_error: Option<String>,
    pub divergences: Vec<Divergence>,
}

impl CheckReport {
    pub fn passed(&self) -> bool {
        self.pipeline_error.is_none() && self.divergences.is_empty()
    }
}

/// Run the full differential check for one case.
pub fn check_case(case: &FuzzCase, opts: &CheckOptions) -> CheckReport {
    let mut report = CheckReport::default();
    let query = match gmdj_sql::parse_query(&case.sql) {
        Ok(q) => q,
        Err(e) => {
            report.pipeline_error = Some(format!("parse/lower failed: {e}\nsql: {}", case.sql));
            return report;
        }
    };
    let catalog = case.catalog();
    let oracle = match run_with_policy(
        &query,
        &catalog,
        Strategy::NaiveNestedLoop,
        ExecPolicy::sequential(),
    ) {
        Ok(r) => r.relation,
        Err(e) => {
            report.pipeline_error = Some(format!("oracle failed: {e}\nsql: {}", case.sql));
            return report;
        }
    };

    for &strategy in &opts.strategies {
        for &policy in &opts.policies {
            if !uses_policy(strategy) && policy != ExecPolicy::sequential() {
                continue;
            }
            if strategy == Strategy::NaiveNestedLoop && policy == ExecPolicy::sequential() {
                continue; // the oracle itself
            }
            let result = run_with_policy(&query, &catalog, strategy, policy);
            // Vectorized/row-path twin check: the same strategy and policy
            // with the batch kernels disabled must produce the identical
            // multiset AND identical gated counters (the kernels claim
            // bit-exact semantics, not just equal answers). Errors must
            // match too — a kernel is only allowed to run where the row
            // path could not have errored.
            if uses_policy(strategy) {
                let row =
                    run_with_policy(&query, &catalog, strategy, policy.with_vectorized(false));
                let twin_detail = match (&result, &row) {
                    (Ok(v), Ok(r)) => {
                        if !v.relation.multiset_eq(&r.relation) {
                            Some(format!(
                                "vectorized ({} rows):\n{}\nrow path ({} rows):\n{}",
                                v.relation.len(),
                                v.relation,
                                r.relation.len(),
                                r.relation
                            ))
                        } else {
                            match (&v.plan_stats, &r.plan_stats) {
                                (Some(vs), Some(rs)) if vs.total_eval() != rs.total_eval() => {
                                    Some(format!(
                                        "gated counters drifted: vectorized {:?} vs row path {:?}",
                                        vs.total_eval(),
                                        rs.total_eval()
                                    ))
                                }
                                _ => None,
                            }
                        }
                    }
                    (Ok(_), Err(e)) => {
                        Some(format!("row path errored while vectorized succeeded: {e}"))
                    }
                    (Err(e), Ok(_)) => {
                        Some(format!("vectorized errored while row path succeeded: {e}"))
                    }
                    (Err(a), Err(b)) => {
                        let (a, b) = (a.to_string(), b.to_string());
                        (a != b)
                            .then(|| format!("errors differ: vectorized {a:?} vs row path {b:?}"))
                    }
                };
                if let Some(detail) = twin_detail {
                    report.divergences.push(Divergence {
                        strategy,
                        policy,
                        oracle_rows: oracle.len(),
                        actual_rows: result.as_ref().ok().map(|r| r.relation.len()),
                        detail: format!(
                            "{} under {}: vectorized and row-path scans disagree\n{detail}",
                            strategy.label(),
                            policy_label(policy)
                        ),
                    });
                }
                // Morsel-size sweep: scheduling granularity must never
                // leak into anything gated. Each size diffs against the
                // default-morsel run above on multiset, gated counters,
                // and error behavior.
                for morsel in [1usize, 7, 64, usize::MAX] {
                    let swept = run_with_policy(
                        &query,
                        &catalog,
                        strategy,
                        policy.with_morsel_size(Some(morsel)),
                    );
                    let sweep_detail = match (&result, &swept) {
                        (Ok(v), Ok(m)) => {
                            if !v.relation.multiset_eq(&m.relation) {
                                Some(format!(
                                    "default morsel ({} rows):\n{}\nmorsel={morsel} ({} rows):\n{}",
                                    v.relation.len(),
                                    v.relation,
                                    m.relation.len(),
                                    m.relation
                                ))
                            } else {
                                match (&v.plan_stats, &m.plan_stats) {
                                    (Some(vs), Some(ms))
                                        if vs.total_eval() != ms.total_eval() =>
                                    {
                                        Some(format!(
                                            "gated counters drifted: default {:?} vs morsel={morsel} {:?}",
                                            vs.total_eval(),
                                            ms.total_eval()
                                        ))
                                    }
                                    _ => None,
                                }
                            }
                        }
                        (Ok(_), Err(e)) => Some(format!(
                            "morsel={morsel} errored while default succeeded: {e}"
                        )),
                        (Err(e), Ok(_)) => Some(format!(
                            "default errored while morsel={morsel} succeeded: {e}"
                        )),
                        (Err(a), Err(b)) => {
                            let (a, b) = (a.to_string(), b.to_string());
                            (a != b).then(|| {
                                format!("errors differ: default {a:?} vs morsel={morsel} {b:?}")
                            })
                        }
                    };
                    if let Some(detail) = sweep_detail {
                        report.divergences.push(Divergence {
                            strategy,
                            policy,
                            oracle_rows: oracle.len(),
                            actual_rows: result.as_ref().ok().map(|r| r.relation.len()),
                            detail: format!(
                                "{} under {}: morsel size changed observable results\n{detail}",
                                strategy.label(),
                                policy_label(policy)
                            ),
                        });
                    }
                }
                // Real-sites twin check: distributed policies re-run over
                // socket-backed loopback sites. Both transports drive the
                // identical per-fragment evaluation, so the result multiset,
                // the gated counters, AND the closed-form network value
                // counts (broadcast_values / collected_states / messages)
                // must match exactly — only the byte counters are allowed
                // to differ (zero in-process, measured on the wire).
                if matches!(
                    policy.mode,
                    gmdj_core::runtime::ExecMode::Distributed { .. }
                ) {
                    let real =
                        run_with_policy(&query, &catalog, strategy, policy.with_real_sites(true));
                    let real_detail = match (&result, &real) {
                        (Ok(v), Ok(r)) => {
                            if !v.relation.multiset_eq(&r.relation) {
                                Some(format!(
                                    "in-process ({} rows):\n{}\nreal sites ({} rows):\n{}",
                                    v.relation.len(),
                                    v.relation,
                                    r.relation.len(),
                                    r.relation
                                ))
                            } else {
                                match (&v.plan_stats, &r.plan_stats) {
                                    (Some(vs), Some(rs)) if vs.total_eval() != rs.total_eval() => {
                                        Some(format!(
                                            "gated counters drifted: in-process {:?} vs real sites {:?}",
                                            vs.total_eval(),
                                            rs.total_eval()
                                        ))
                                    }
                                    (Some(vs), Some(rs)) => {
                                        let (a, b) = (vs.total_network(), rs.total_network());
                                        let a = (a.broadcast_values, a.collected_states, a.messages);
                                        let b = (b.broadcast_values, b.collected_states, b.messages);
                                        (a != b).then(|| {
                                            format!(
                                                "network value counts drifted \
                                                 (broadcast_values, collected_states, messages): \
                                                 in-process {a:?} vs real sites {b:?}"
                                            )
                                        })
                                    }
                                    _ => None,
                                }
                            }
                        }
                        (Ok(_), Err(e)) => Some(format!(
                            "real sites errored while in-process succeeded: {e}"
                        )),
                        (Err(e), Ok(_)) => Some(format!(
                            "in-process errored while real sites succeeded: {e}"
                        )),
                        (Err(a), Err(b)) => {
                            let (a, b) = (a.to_string(), b.to_string());
                            (a != b).then(|| {
                                format!("errors differ: in-process {a:?} vs real sites {b:?}")
                            })
                        }
                    };
                    if let Some(detail) = real_detail {
                        report.divergences.push(Divergence {
                            strategy,
                            policy,
                            oracle_rows: oracle.len(),
                            actual_rows: result.as_ref().ok().map(|r| r.relation.len()),
                            detail: format!(
                                "{} under {}: in-process and socket transports disagree\n{detail}",
                                strategy.label(),
                                policy_label(policy)
                            ),
                        });
                    }
                }
                // Shared-pool twin check: the same query submitted by two
                // concurrent clients through a coalescing pool (which will
                // merge them into one shared pass and deduplicate the
                // identical pair). Each client's multiset, gated counters,
                // and error text must match the standalone run — sharing
                // is an execution detail, never an observable one. One
                // policy suffices: the pool engages for any
                // non-distributed, unpartitioned policy the same way.
                if policy == ExecPolicy::parallel(2) {
                    let pool = Arc::new(SharedScanPool::new(SharedScanConfig {
                        window: Duration::from_millis(500),
                        target_batch: 2,
                        threads: 2,
                        morsel_rows: 7,
                    }));
                    let pooled: Vec<_> = std::thread::scope(|scope| {
                        let handles: Vec<_> = (0..2)
                            .map(|_| {
                                let (query, catalog, pool) = (&query, &catalog, pool.clone());
                                scope.spawn(move || {
                                    run_with_policy_pooled(query, catalog, strategy, policy, pool)
                                })
                            })
                            .collect();
                        handles
                            .into_iter()
                            .map(|h| h.join().expect("pooled submitter panicked"))
                            .collect()
                    });
                    for (client, p) in pooled.iter().enumerate() {
                        let pool_detail = match (&result, p) {
                            (Ok(v), Ok(s)) => {
                                if !v.relation.multiset_eq(&s.relation) {
                                    Some(format!(
                                        "standalone ({} rows):\n{}\nshared pool ({} rows):\n{}",
                                        v.relation.len(),
                                        v.relation,
                                        s.relation.len(),
                                        s.relation
                                    ))
                                } else {
                                    match (&v.plan_stats, &s.plan_stats) {
                                        (Some(vs), Some(ss))
                                            if vs.total_eval() != ss.total_eval() =>
                                        {
                                            Some(format!(
                                                "gated counters drifted: standalone {:?} \
                                                 vs shared pool {:?}",
                                                vs.total_eval(),
                                                ss.total_eval()
                                            ))
                                        }
                                        _ => None,
                                    }
                                }
                            }
                            (Ok(_), Err(e)) => Some(format!(
                                "shared pool errored while standalone succeeded: {e}"
                            )),
                            (Err(e), Ok(_)) => Some(format!(
                                "standalone errored while shared pool succeeded: {e}"
                            )),
                            (Err(a), Err(b)) => {
                                let (a, b) = (a.to_string(), b.to_string());
                                (a != b).then(|| {
                                    format!("errors differ: standalone {a:?} vs shared pool {b:?}")
                                })
                            }
                        };
                        if let Some(detail) = pool_detail {
                            report.divergences.push(Divergence {
                                strategy,
                                policy,
                                oracle_rows: oracle.len(),
                                actual_rows: result.as_ref().ok().map(|r| r.relation.len()),
                                detail: format!(
                                    "{} under {}: shared-scan pool client {client} disagrees \
                                     with standalone execution\n{detail}",
                                    strategy.label(),
                                    policy_label(policy)
                                ),
                            });
                        }
                    }
                }
            }
            match result {
                Ok(r) => {
                    let relation = match opts.mutate {
                        Some(m) => m(strategy, policy, &r.relation).unwrap_or(r.relation),
                        None => r.relation,
                    };
                    if !oracle.multiset_eq(&relation) {
                        report.divergences.push(Divergence {
                            strategy,
                            policy,
                            oracle_rows: oracle.len(),
                            actual_rows: Some(relation.len()),
                            detail: format!(
                                "oracle ({} rows):\n{oracle}\n{} under {} ({} rows):\n{relation}",
                                oracle.len(),
                                strategy.label(),
                                policy_label(policy),
                                relation.len()
                            ),
                        });
                    }
                }
                Err(e) => report.divergences.push(Divergence {
                    strategy,
                    policy,
                    oracle_rows: oracle.len(),
                    actual_rows: None,
                    detail: format!(
                        "{} under {} errored while the oracle succeeded: {e}",
                        strategy.label(),
                        policy_label(policy)
                    ),
                }),
            }
        }
    }
    report
}

/// Re-run the first diverging (strategy, policy) with a collecting trace
/// sink and return the span events as JSON lines — the per-case profile
/// that ships inside a written repro (PR 2's observability layer).
pub fn trace_divergence(case: &FuzzCase, d: &Divergence) -> Vec<String> {
    let Ok(query) = gmdj_sql::parse_query(&case.sql) else {
        return Vec::new();
    };
    let catalog = case.catalog();
    let sink = Arc::new(CollectingSink::new());
    let _ = run_with_policy_traced(&query, &catalog, d.strategy, d.policy, sink.clone());
    sink.events().iter().map(|e| e.to_json()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::TableSpec;

    fn tiny_case(sql: &str) -> FuzzCase {
        FuzzCase {
            seed: 0,
            tables: vec![
                TableSpec {
                    name: "B".into(),
                    columns: vec!["a".into(), "b".into()],
                    rows: vec![vec![Some(1), Some(2)], vec![None, Some(0)]],
                },
                TableSpec {
                    name: "R".into(),
                    columns: vec!["a".into(), "b".into()],
                    rows: vec![vec![Some(1), None]],
                },
            ],
            sql: sql.into(),
            spec: None,
        }
    }

    #[test]
    fn clean_case_passes() {
        let case =
            tiny_case("SELECT * FROM B B0 WHERE EXISTS (SELECT * FROM R R1 WHERE R1.a = B0.a)");
        let report = check_case(&case, &CheckOptions::default());
        assert!(report.passed(), "{report:?}");
    }

    #[test]
    fn parse_errors_are_pipeline_errors() {
        let case = tiny_case("SELECT FROM WHERE");
        let report = check_case(&case, &CheckOptions::default());
        assert!(report.pipeline_error.is_some());
    }

    /// The vectorized/row-path twin check runs clean on a case whose
    /// probe shape actually reaches the kernels (string equality key,
    /// NULLs in both scopes, a residual comparison).
    #[test]
    fn vectorized_twin_check_passes_on_kernel_shapes() {
        let case = tiny_case(
            "SELECT * FROM B B0 WHERE EXISTS \
             (SELECT * FROM R R1 WHERE R1.a = B0.a AND R1.b < B0.b)",
        );
        let report = check_case(&case, &CheckOptions::default());
        assert!(report.passed(), "{report:?}");
    }

    #[test]
    fn mutator_induces_divergence() {
        fn drop_all(s: Strategy, _p: ExecPolicy, r: &Relation) -> Option<Relation> {
            (s == Strategy::GmdjOptimized).then(|| Relation::empty(r.schema().clone()))
        }
        let case =
            tiny_case("SELECT * FROM B B0 WHERE EXISTS (SELECT * FROM R R1 WHERE R1.a = B0.a)");
        let opts = CheckOptions {
            mutate: Some(drop_all),
            ..CheckOptions::default()
        };
        let report = check_case(&case, &opts);
        assert!(!report.divergences.is_empty());
        assert!(report
            .divergences
            .iter()
            .all(|d| d.strategy == Strategy::GmdjOptimized));
    }
}
