//! Seed-driven case generation.
//!
//! Each seed deterministically produces a small randomized catalog (three
//! integer tables with NULL-heavy cells) and a nested query covering the
//! constructs of Section 2.1: scalar aggregate comparison, SOME/ALL,
//! EXISTS/NOT EXISTS, IN/NOT IN, boolean structure with NOT/OR, linear
//! nesting to depth 3, and non-neighboring correlation (an inner block
//! referencing a grandparent's attributes — the Theorem 3.3/3.4 shape).

use crate::rng::SplitMix64;
use crate::spec::{Agg, ColRef, FuzzCase, Op, Operand, Pred, Projection, QuerySpec, SubSpec};

/// Tunable generation limits. The defaults keep cases small enough that a
/// full differential check (every strategy × every policy) runs in well
/// under a millisecond, so hundreds of cases per second are practical.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Maximum rows per generated table.
    pub max_rows: usize,
    /// Inclusive upper bound of the integer value domain `0..=max_value`.
    /// Kept tiny so collisions, empty correlated ranges, and boundary
    /// comparisons are all common.
    pub max_value: i64,
    /// Probability (percent) that a generated cell is NULL.
    pub null_pct: u64,
    /// Maximum subquery nesting depth.
    pub max_depth: usize,
    /// Maximum total subquery constructs per case.
    pub max_subqueries: usize,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_rows: 7,
            max_value: 4,
            null_pct: 25,
            max_depth: 3,
            max_subqueries: 4,
        }
    }
}

const TABLES: [&str; 3] = ["B", "R", "S"];
const COLUMNS: [&str; 2] = ["a", "b"];

struct Gen<'a> {
    rng: SplitMix64,
    cfg: &'a GenConfig,
    alias_counter: usize,
    subqueries_left: usize,
}

/// Generate the case for one seed.
pub fn generate_case(seed: u64, cfg: &GenConfig) -> FuzzCase {
    let mut g = Gen {
        rng: SplitMix64::new(seed),
        cfg,
        alias_counter: 0,
        subqueries_left: cfg.max_subqueries,
    };

    let tables = TABLES
        .iter()
        .map(|name| {
            let rows = g.rng.below(cfg.max_rows as u64 + 1) as usize;
            crate::spec::TableSpec {
                name: name.to_string(),
                columns: COLUMNS.iter().map(|c| c.to_string()).collect(),
                rows: (0..rows)
                    .map(|_| (0..COLUMNS.len()).map(|_| g.cell()).collect())
                    .collect(),
            }
        })
        .collect();

    let outer_table = g.rng.pick(&TABLES).to_string();
    let alias = g.fresh_alias(&outer_table);
    let scope = vec![alias.clone()];
    let predicate = g.block_pred(&scope, 0);
    let projection = match g.rng.below(4) {
        0 => Projection::Column(g.column().to_string()),
        1 => Projection::DistinctColumn(g.column().to_string()),
        _ => Projection::Star,
    };

    let spec = QuerySpec {
        table: outer_table,
        alias,
        projection,
        predicate,
    };
    let sql = spec.to_sql();
    FuzzCase {
        seed,
        tables,
        sql,
        spec: Some(spec),
    }
}

impl Gen<'_> {
    fn cell(&mut self) -> Option<i64> {
        if self.rng.chance(self.cfg.null_pct) {
            None
        } else {
            Some(self.rng.below(self.cfg.max_value as u64 + 1) as i64)
        }
    }

    fn column(&mut self) -> &'static str {
        self.rng.pick::<&str>(&COLUMNS)
    }

    fn fresh_alias(&mut self, table: &str) -> String {
        let n = self.alias_counter;
        self.alias_counter += 1;
        format!("{table}{n}")
    }

    /// A literal operand; NULL-heavy on purpose (the 3VL traps live
    /// there).
    fn literal(&mut self) -> Operand {
        if self.rng.chance(20) {
            Operand::Lit(None)
        } else {
            Operand::Lit(Some(self.rng.below(self.cfg.max_value as u64 + 1) as i64))
        }
    }

    /// A column of any block in scope. Weighted toward the innermost
    /// alias (ordinary correlation) but regularly reaching further out,
    /// which yields non-neighboring correlation once nesting passes
    /// depth 2.
    fn scope_col(&mut self, scope: &[String]) -> ColRef {
        let idx = if scope.len() > 1 && self.rng.chance(35) {
            self.rng.below(scope.len() as u64 - 1) as usize
        } else {
            scope.len() - 1
        };
        ColRef::new(scope[idx].clone(), self.column())
    }

    /// Left operand of a comparison-shaped construct.
    fn operand(&mut self, scope: &[String]) -> Operand {
        if self.rng.chance(80) {
            Operand::Col(self.scope_col(scope))
        } else {
            self.literal()
        }
    }

    fn op(&mut self) -> Op {
        *self.rng.pick(&Op::ALL)
    }

    /// The WHERE predicate of one block: 1–3 leaves under random boolean
    /// structure.
    fn block_pred(&mut self, scope: &[String], depth: usize) -> Pred {
        let leaves = 1 + self.rng.below(3) as usize;
        let mut pred: Option<Pred> = None;
        for _ in 0..leaves {
            let leaf = self.leaf(scope, depth);
            pred = Some(match pred {
                None => leaf,
                Some(acc) => {
                    if self.rng.chance(70) {
                        Pred::And(Box::new(acc), Box::new(leaf))
                    } else {
                        Pred::Or(Box::new(acc), Box::new(leaf))
                    }
                }
            });
        }
        let mut pred = pred.unwrap_or(Pred::True);
        if self.rng.chance(15) {
            pred = Pred::Not(Box::new(pred));
        }
        pred
    }

    /// One leaf: a flat atom or (budget permitting) a subquery construct.
    fn leaf(&mut self, scope: &[String], depth: usize) -> Pred {
        let can_nest = depth < self.cfg.max_depth && self.subqueries_left > 0;
        if can_nest && self.rng.chance(55) {
            self.subquery_leaf(scope, depth)
        } else {
            self.atom(scope)
        }
    }

    fn atom(&mut self, scope: &[String]) -> Pred {
        match self.rng.below(10) {
            // Correlation-style column/column comparison.
            0..=4 => Pred::Cmp {
                left: Operand::Col(self.scope_col(scope)),
                op: self.op(),
                right: Operand::Col(self.scope_col(scope)),
            },
            // Column/literal comparison (literal may be NULL).
            5..=8 => Pred::Cmp {
                left: Operand::Col(self.scope_col(scope)),
                op: self.op(),
                right: self.literal(),
            },
            _ => Pred::IsNull {
                col: self.scope_col(scope),
                negated: self.rng.chance(50),
            },
        }
    }

    fn subquery_leaf(&mut self, scope: &[String], depth: usize) -> Pred {
        self.subqueries_left -= 1;
        let table = self.rng.pick(&TABLES).to_string();
        let alias = self.fresh_alias(&table);
        let mut inner_scope = scope.to_vec();
        inner_scope.push(alias.clone());
        let pred = self.block_pred(&inner_scope, depth + 1);
        let sub = Box::new(SubSpec {
            table,
            alias,
            output: self.column().to_string(),
            pred,
        });
        match self.rng.below(5) {
            0 => Pred::Exists {
                negated: self.rng.chance(50),
                sub,
            },
            1 => Pred::In {
                left: self.operand(scope),
                negated: self.rng.chance(50),
                sub,
            },
            2 => Pred::Quant {
                left: self.operand(scope),
                op: self.op(),
                all: self.rng.chance(50),
                sub,
            },
            _ => Pred::AggCmp {
                left: self.operand(scope),
                op: self.op(),
                func: *self.rng.pick(&Agg::ALL),
                sub,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::case_seed;

    #[test]
    fn generated_sql_always_parses() {
        let cfg = GenConfig::default();
        for i in 0..300 {
            let case = generate_case(case_seed(42, i), &cfg);
            gmdj_sql::parse_query(&case.sql)
                .unwrap_or_else(|e| panic!("seed {i}: `{}` failed to parse: {e}", case.sql));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::default();
        let a = generate_case(987, &cfg);
        let b = generate_case(987, &cfg);
        assert_eq!(a.sql, b.sql);
        assert_eq!(a.tables, b.tables);
    }

    /// The generator must cover every Section 2.1 construct within a
    /// reasonable number of seeds — this is the coverage contract the
    /// differential harness depends on.
    #[test]
    fn constructs_are_all_reachable() {
        let cfg = GenConfig::default();
        let mut exists = false;
        let mut not_exists = false;
        let mut in_pred = false;
        let mut not_in = false;
        let mut some_q = false;
        let mut all_q = false;
        let mut agg_cmp = false;
        let mut null_lit = false;
        let mut depth3 = false;
        let mut non_neighboring = false;

        fn scan(p: &Pred, scope_len: usize, f: &mut dyn FnMut(&Pred, usize)) {
            f(p, scope_len);
            match p {
                Pred::And(a, b) | Pred::Or(a, b) => {
                    scan(a, scope_len, f);
                    scan(b, scope_len, f);
                }
                Pred::Not(q) => scan(q, scope_len, f),
                Pred::Exists { sub, .. }
                | Pred::In { sub, .. }
                | Pred::Quant { sub, .. }
                | Pred::AggCmp { sub, .. } => scan(&sub.pred, scope_len + 1, f),
                _ => {}
            }
        }

        for i in 0..2000 {
            let case = generate_case(case_seed(7, i), &cfg);
            let spec = case.spec.as_ref().unwrap();
            if spec.predicate.nesting_depth() >= 3 {
                depth3 = true;
            }
            if case.sql.contains("NULL") {
                null_lit = true;
            }
            scan(&spec.predicate, 1, &mut |p, scope_len| match p {
                Pred::Exists { negated, .. } => {
                    if *negated {
                        not_exists = true;
                    } else {
                        exists = true;
                    }
                }
                Pred::In { negated, .. } => {
                    if *negated {
                        not_in = true;
                    } else {
                        in_pred = true;
                    }
                }
                Pred::Quant { all, .. } => {
                    if *all {
                        all_q = true;
                    } else {
                        some_q = true;
                    }
                }
                Pred::AggCmp { .. } => agg_cmp = true,
                Pred::Cmp { left, right, .. } if scope_len >= 3 => {
                    // A comparison two or more blocks deep referencing an
                    // alias at least two levels up is non-neighboring
                    // correlation.
                    for operand in [left, right] {
                        if let Operand::Col(c) = operand {
                            // Outer aliases end with low counters; a
                            // structural check: the referenced alias is
                            // not the innermost block's.
                            if c.alias.ends_with('0') && scope_len >= 3 {
                                non_neighboring = true;
                            }
                        }
                    }
                }
                _ => {}
            });
        }
        assert!(
            exists
                && not_exists
                && in_pred
                && not_in
                && some_q
                && all_q
                && agg_cmp
                && null_lit
                && depth3
                && non_neighboring,
            "coverage gaps: exists={exists} not_exists={not_exists} in={in_pred} \
             not_in={not_in} some={some_q} all={all_q} agg={agg_cmp} null={null_lit} \
             depth3={depth3} non_neighboring={non_neighboring}"
        );
    }
}
