//! TPC-R-style table generation (substitute for the paper's `dbgen`
//! databases).
//!
//! The schema follows the classic TPC-R/TPC-H layout closely enough that
//! anyone who knows the benchmark recognizes the tables; column sets are
//! trimmed to the attributes the workloads touch. All generation is
//! seeded and deterministic.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use gmdj_relation::relation::Relation;
use gmdj_relation::schema::{DataType, Field, Schema};
use gmdj_relation::value::Value;

/// Row counts and seed for a TPC-R-style database.
#[derive(Debug, Clone)]
pub struct TpcrConfig {
    pub customers: usize,
    pub orders: usize,
    pub lineitems: usize,
    pub parts: usize,
    pub suppliers: usize,
    pub seed: u64,
}

impl TpcrConfig {
    /// A small but fully populated database (unit tests, examples).
    pub fn tiny(seed: u64) -> Self {
        TpcrConfig {
            customers: 50,
            orders: 400,
            lineitems: 1200,
            parts: 40,
            suppliers: 10,
            seed,
        }
    }

    /// Roughly scale-factor-proportional sizing: `sf = 1.0` approximates
    /// the row ratios of TPC-R at a laptop-friendly absolute size.
    pub fn scale(sf: f64, seed: u64) -> Self {
        let f = |base: f64| ((base * sf).round() as usize).max(1);
        TpcrConfig {
            customers: f(15_000.0),
            orders: f(150_000.0),
            lineitems: f(600_000.0),
            parts: f(20_000.0),
            suppliers: f(1_000.0),
            seed,
        }
    }
}

/// The generated database.
#[derive(Debug, Clone)]
pub struct TpcrData {
    pub customer: Relation,
    pub orders: Relation,
    pub lineitem: Relation,
    pub part: Relation,
    pub supplier: Relation,
    pub nation: Relation,
}

const NATIONS: [&str; 10] = [
    "DENMARK", "SWEDEN", "NORWAY", "GERMANY", "FRANCE", "SPAIN", "ITALY", "JAPAN", "BRAZIL",
    "CANADA",
];
const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "HOUSEHOLD",
    "MACHINERY",
];
const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
const BRANDS: [&str; 5] = ["Brand#11", "Brand#22", "Brand#33", "Brand#44", "Brand#55"];
const CONTAINERS: [&str; 5] = ["SM BOX", "MED BOX", "LG BOX", "JUMBO PACK", "WRAP CASE"];

impl TpcrData {
    /// Generate a database.
    pub fn generate(cfg: &TpcrConfig) -> TpcrData {
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        TpcrData {
            customer: gen_customer(cfg, &mut rng),
            orders: gen_orders(cfg, &mut rng),
            lineitem: gen_lineitem(cfg, &mut rng),
            part: gen_part(cfg, &mut rng),
            supplier: gen_supplier(cfg, &mut rng),
            nation: gen_nation(),
        }
    }

    /// Register every table in a catalog under its TPC name.
    pub fn into_catalog(self) -> gmdj_core::exec::MemoryCatalog {
        gmdj_core::exec::MemoryCatalog::new()
            .with("customer", self.customer)
            .with("orders", self.orders)
            .with("lineitem", self.lineitem)
            .with("part", self.part)
            .with("supplier", self.supplier)
            .with("nation", self.nation)
    }
}

fn schema(qualifier: &str, cols: &[(&str, DataType)]) -> std::sync::Arc<Schema> {
    Schema::new(
        cols.iter()
            .map(|(n, t)| Field::new(qualifier, *n, *t))
            .collect(),
    )
}

fn gen_customer(cfg: &TpcrConfig, rng: &mut SmallRng) -> Relation {
    let schema = schema(
        "customer",
        &[
            ("custkey", DataType::Int),
            ("name", DataType::Str),
            ("nationkey", DataType::Int),
            ("acctbal", DataType::Float),
            ("mktsegment", DataType::Str),
        ],
    );
    let rows = (1..=cfg.customers as i64)
        .map(|k| {
            vec![
                Value::Int(k),
                Value::str(format!("Customer#{k:09}")),
                Value::Int(rng.gen_range(0..NATIONS.len() as i64)),
                Value::Float((rng.gen_range(-99_999..=999_999) as f64) / 100.0),
                Value::str(SEGMENTS[rng.gen_range(0..SEGMENTS.len())]),
            ]
            .into_boxed_slice()
        })
        .collect();
    Relation::from_parts(schema, rows)
}

fn gen_orders(cfg: &TpcrConfig, rng: &mut SmallRng) -> Relation {
    let schema = schema(
        "orders",
        &[
            ("orderkey", DataType::Int),
            ("custkey", DataType::Int),
            ("totalprice", DataType::Float),
            ("orderdate", DataType::Int),
            ("orderpriority", DataType::Str),
            ("clerk", DataType::Str),
        ],
    );
    let customers = cfg.customers.max(1) as i64;
    let rows = (1..=cfg.orders as i64)
        .map(|k| {
            vec![
                Value::Int(k),
                Value::Int(rng.gen_range(1..=customers)),
                Value::Float((rng.gen_range(1_000..=50_000_000) as f64) / 100.0),
                // Days since 1992-01-01, TPC-style 7-year window.
                Value::Int(rng.gen_range(0..2_557)),
                Value::str(PRIORITIES[rng.gen_range(0..PRIORITIES.len())]),
                Value::str(format!("Clerk#{:05}", rng.gen_range(0..1000))),
            ]
            .into_boxed_slice()
        })
        .collect();
    Relation::from_parts(schema, rows)
}

fn gen_lineitem(cfg: &TpcrConfig, rng: &mut SmallRng) -> Relation {
    let schema = schema(
        "lineitem",
        &[
            ("orderkey", DataType::Int),
            ("partkey", DataType::Int),
            ("suppkey", DataType::Int),
            ("quantity", DataType::Int),
            ("extendedprice", DataType::Float),
            ("discount", DataType::Float),
            ("shipdate", DataType::Int),
        ],
    );
    let orders = cfg.orders.max(1) as i64;
    let parts = cfg.parts.max(1) as i64;
    let supps = cfg.suppliers.max(1) as i64;
    let rows = (0..cfg.lineitems)
        .map(|_| {
            let qty = rng.gen_range(1..=50i64);
            let price = (rng.gen_range(90_000..=110_000) as f64) / 100.0;
            vec![
                Value::Int(rng.gen_range(1..=orders)),
                Value::Int(rng.gen_range(1..=parts)),
                Value::Int(rng.gen_range(1..=supps)),
                Value::Int(qty),
                Value::Float(qty as f64 * price),
                Value::Float((rng.gen_range(0..=10) as f64) / 100.0),
                Value::Int(rng.gen_range(0..2_557)),
            ]
            .into_boxed_slice()
        })
        .collect();
    Relation::from_parts(schema, rows)
}

fn gen_part(cfg: &TpcrConfig, rng: &mut SmallRng) -> Relation {
    let schema = schema(
        "part",
        &[
            ("partkey", DataType::Int),
            ("brand", DataType::Str),
            ("retailprice", DataType::Float),
            ("container", DataType::Str),
        ],
    );
    let rows = (1..=cfg.parts as i64)
        .map(|k| {
            vec![
                Value::Int(k),
                Value::str(BRANDS[rng.gen_range(0..BRANDS.len())]),
                // Uniform and independent of the key: scan order must not
                // correlate with price, or completion/early-exit behaviour
                // degenerates from harmonic to linear decay.
                Value::Float(rng.gen_range(90_000..2_000_000) as f64 / 100.0),
                Value::str(CONTAINERS[rng.gen_range(0..CONTAINERS.len())]),
            ]
            .into_boxed_slice()
        })
        .collect();
    Relation::from_parts(schema, rows)
}

fn gen_supplier(cfg: &TpcrConfig, rng: &mut SmallRng) -> Relation {
    let schema = schema(
        "supplier",
        &[
            ("suppkey", DataType::Int),
            ("nationkey", DataType::Int),
            ("acctbal", DataType::Float),
        ],
    );
    let rows = (1..=cfg.suppliers as i64)
        .map(|k| {
            vec![
                Value::Int(k),
                Value::Int(rng.gen_range(0..NATIONS.len() as i64)),
                Value::Float((rng.gen_range(-99_999..=999_999) as f64) / 100.0),
            ]
            .into_boxed_slice()
        })
        .collect();
    Relation::from_parts(schema, rows)
}

fn gen_nation() -> Relation {
    let schema = schema(
        "nation",
        &[("nationkey", DataType::Int), ("name", DataType::Str)],
    );
    let rows = NATIONS
        .iter()
        .enumerate()
        .map(|(i, n)| vec![Value::Int(i as i64), Value::str(*n)].into_boxed_slice())
        .collect();
    Relation::from_parts(schema, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = TpcrData::generate(&TpcrConfig::tiny(7));
        let b = TpcrData::generate(&TpcrConfig::tiny(7));
        let c = TpcrData::generate(&TpcrConfig::tiny(8));
        assert!(a.orders.multiset_eq(&b.orders));
        assert!(!a.orders.multiset_eq(&c.orders));
    }

    #[test]
    fn row_counts_match_config() {
        let cfg = TpcrConfig {
            customers: 11,
            orders: 22,
            lineitems: 33,
            parts: 4,
            suppliers: 5,
            seed: 1,
        };
        let d = TpcrData::generate(&cfg);
        assert_eq!(d.customer.len(), 11);
        assert_eq!(d.orders.len(), 22);
        assert_eq!(d.lineitem.len(), 33);
        assert_eq!(d.part.len(), 4);
        assert_eq!(d.supplier.len(), 5);
        assert_eq!(d.nation.len(), 10);
    }

    #[test]
    fn foreign_keys_in_range() {
        let cfg = TpcrConfig::tiny(42);
        let d = TpcrData::generate(&cfg);
        for row in d.orders.rows() {
            let ck = row[1].as_i64().unwrap();
            assert!(ck >= 1 && ck <= cfg.customers as i64);
        }
        for row in d.lineitem.rows() {
            let ok = row[0].as_i64().unwrap();
            assert!(ok >= 1 && ok <= cfg.orders as i64);
        }
    }

    #[test]
    fn keys_are_dense_and_unique() {
        let d = TpcrData::generate(&TpcrConfig::tiny(3));
        let mut keys: Vec<i64> = d
            .customer
            .rows()
            .iter()
            .map(|r| r[0].as_i64().unwrap())
            .collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), d.customer.len());
    }

    #[test]
    fn catalog_registration() {
        use gmdj_core::exec::TableProvider;
        let cat = TpcrData::generate(&TpcrConfig::tiny(1)).into_catalog();
        assert!(cat.table("orders").is_ok());
        assert!(cat.table("nation").is_ok());
        assert!(cat.table("bogus").is_err());
    }
}
