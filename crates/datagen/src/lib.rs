//! # gmdj-datagen
//!
//! Deterministic data generation for the benchmark and example suites.
//!
//! The paper derived its test databases from the TPC(R) `dbgen` program
//! (50–200 MB). `dbgen` itself is neither redistributable here nor
//! necessary: the experiments are parameterized only by the outer/inner
//! block cardinalities and the selectivities of the correlation
//! predicates. [`tpcr`] generates the classic TPC-R schema (customer,
//! orders, lineitem, part, supplier, nation) with seeded pseudo-random
//! distributions, so every run of every figure is reproducible bit for
//! bit.
//!
//! [`netflow`] generates the paper's motivating IP-flow warehouse
//! (Flow, Hours, User — Section 2.3), and [`workloads`] assembles the
//! exact catalog + query pairs for Figures 2–5 and the worked examples.

pub mod netflow;
pub mod tpcr;
pub mod workloads;

pub use netflow::{NetflowConfig, NetflowData};
pub use tpcr::{TpcrConfig, TpcrData};
