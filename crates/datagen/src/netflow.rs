//! The paper's motivating IP-flow warehouse (Section 2.3).
//!
//! ```text
//! Flow  (SourceIP, DestIP, StartTime, EndTime, Protocol, NumBytes, NumPkts)
//! Hours (HourDsc, StartInterval, EndInterval)
//! User  (Name, Dept, IPAddress)
//! ```
//!
//! Hours is the time dimension; flows carry seconds-since-epoch-style
//! integer timestamps that fall inside the covered window. A configurable
//! set of "hot" destination IPs (167.167.167.0 etc. in the paper's
//! examples) receives a fixed fraction of the traffic so the example
//! queries have non-trivial answers.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use gmdj_relation::relation::Relation;
use gmdj_relation::schema::{DataType, Field, Schema};
use gmdj_relation::value::Value;

/// Configuration for the flow warehouse.
#[derive(Debug, Clone)]
pub struct NetflowConfig {
    /// Number of one-hour buckets in the Hours dimension.
    pub hours: usize,
    /// Number of flow records.
    pub flows: usize,
    /// Number of user accounts (each owns one source IP).
    pub users: usize,
    /// Number of distinct source IPs (≥ users; the surplus are IPs with
    /// no account, as in the introduction's example query).
    pub source_ips: usize,
    pub seed: u64,
}

impl NetflowConfig {
    /// Small instance for tests and the quickstart example.
    pub fn tiny(seed: u64) -> Self {
        NetflowConfig {
            hours: 24,
            flows: 2_000,
            users: 20,
            source_ips: 30,
            seed,
        }
    }
}

/// The generated warehouse.
#[derive(Debug, Clone)]
pub struct NetflowData {
    pub flow: Relation,
    pub hours: Relation,
    pub user: Relation,
}

/// The hot destination IPs used by Examples 2.2, 2.3 and 4.1.
pub const HOT_DEST_IPS: [&str; 3] = ["167.167.167.0", "168.168.168.0", "169.169.169.0"];

const PROTOCOLS: [(&str, u32); 4] = [("HTTP", 55), ("FTP", 20), ("SMTP", 15), ("DNS", 10)];

fn ip(i: usize) -> String {
    format!("10.0.{}.{}", (i / 250) % 250, i % 250 + 1)
}

impl NetflowData {
    /// Generate a warehouse.
    pub fn generate(cfg: &NetflowConfig) -> NetflowData {
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let horizon = (cfg.hours as i64) * 3600;

        let hours_schema = Schema::new(vec![
            Field::new("Hours", "HourDsc", DataType::Int),
            Field::new("Hours", "StartInterval", DataType::Int),
            Field::new("Hours", "EndInterval", DataType::Int),
        ]);
        let hours_rows = (0..cfg.hours as i64)
            .map(|h| {
                vec![
                    Value::Int(h + 1),
                    Value::Int(h * 3600),
                    Value::Int((h + 1) * 3600),
                ]
                .into_boxed_slice()
            })
            .collect();
        let hours = Relation::from_parts(hours_schema, hours_rows);

        let user_schema = Schema::new(vec![
            Field::new("User", "Name", DataType::Str),
            Field::new("User", "Dept", DataType::Str),
            Field::new("User", "IPAddress", DataType::Str),
        ]);
        let depts = ["research", "ops", "sales", "support"];
        let user_rows = (0..cfg.users)
            .map(|u| {
                vec![
                    Value::str(format!("user{u:04}")),
                    Value::str(depts[u % depts.len()]),
                    Value::str(ip(u)),
                ]
                .into_boxed_slice()
            })
            .collect();
        let user = Relation::from_parts(user_schema, user_rows);

        let flow_schema = Schema::new(vec![
            Field::new("Flow", "SourceIP", DataType::Str),
            Field::new("Flow", "DestIP", DataType::Str),
            Field::new("Flow", "StartTime", DataType::Int),
            Field::new("Flow", "EndTime", DataType::Int),
            Field::new("Flow", "Protocol", DataType::Str),
            Field::new("Flow", "NumBytes", DataType::Int),
            Field::new("Flow", "NumPkts", DataType::Int),
        ]);
        let flow_rows = (0..cfg.flows)
            .map(|_| {
                let src = ip(rng.gen_range(0..cfg.source_ips.max(1)));
                // ~6% of traffic goes to each hot destination.
                let dest = if rng.gen_ratio(18, 100) {
                    HOT_DEST_IPS[rng.gen_range(0..HOT_DEST_IPS.len())].to_string()
                } else {
                    ip(cfg.source_ips + rng.gen_range(0..1000))
                };
                let start = rng.gen_range(0..horizon.max(1));
                let dur = rng.gen_range(1..300);
                let proto = pick_protocol(&mut rng);
                let pkts = rng.gen_range(1..2_000i64);
                vec![
                    Value::str(src),
                    Value::str(dest),
                    Value::Int(start),
                    Value::Int((start + dur).min(horizon)),
                    Value::str(proto),
                    Value::Int(pkts * rng.gen_range(40..1500)),
                    Value::Int(pkts),
                ]
                .into_boxed_slice()
            })
            .collect();
        let flow = Relation::from_parts(flow_schema, flow_rows);

        NetflowData { flow, hours, user }
    }

    /// Register the tables under the paper's names.
    pub fn into_catalog(self) -> gmdj_core::exec::MemoryCatalog {
        gmdj_core::exec::MemoryCatalog::new()
            .with("Flow", self.flow)
            .with("Hours", self.hours)
            .with("User", self.user)
    }
}

fn pick_protocol(rng: &mut SmallRng) -> &'static str {
    let total: u32 = PROTOCOLS.iter().map(|(_, w)| w).sum();
    let mut x = rng.gen_range(0..total);
    for (name, w) in PROTOCOLS {
        if x < w {
            return name;
        }
        x -= w;
    }
    PROTOCOLS[0].0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hours_partition_the_horizon() {
        let d = NetflowData::generate(&NetflowConfig::tiny(1));
        assert_eq!(d.hours.len(), 24);
        let rows = d.hours.sorted_rows();
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row[1], Value::Int(i as i64 * 3600));
            assert_eq!(row[2], Value::Int((i as i64 + 1) * 3600));
        }
    }

    #[test]
    fn flows_fall_inside_the_horizon() {
        let cfg = NetflowConfig::tiny(2);
        let d = NetflowData::generate(&cfg);
        let horizon = cfg.hours as i64 * 3600;
        for row in d.flow.rows() {
            let t = row[2].as_i64().unwrap();
            assert!((0..horizon).contains(&t));
            assert!(row[3].as_i64().unwrap() >= t);
        }
    }

    #[test]
    fn hot_destinations_receive_traffic() {
        let d = NetflowData::generate(&NetflowConfig::tiny(3));
        for hot in HOT_DEST_IPS {
            let n = d
                .flow
                .rows()
                .iter()
                .filter(|r| r[1].as_str() == Some(hot))
                .count();
            assert!(n > 0, "{hot} received no traffic");
        }
    }

    #[test]
    fn users_own_source_ips() {
        let cfg = NetflowConfig::tiny(4);
        let d = NetflowData::generate(&cfg);
        assert_eq!(d.user.len(), cfg.users);
        // Every user IP is a possible source IP.
        let srcs: std::collections::HashSet<String> = (0..cfg.source_ips).map(ip).collect();
        for row in d.user.rows() {
            assert!(srcs.contains(row[2].as_str().unwrap()));
        }
    }

    #[test]
    fn deterministic() {
        let a = NetflowData::generate(&NetflowConfig::tiny(9));
        let b = NetflowData::generate(&NetflowConfig::tiny(9));
        assert!(a.flow.multiset_eq(&b.flow));
    }
}
