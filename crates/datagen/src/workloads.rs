//! The benchmark workloads of Section 5, one constructor per figure.
//!
//! Each constructor returns the generated catalog plus the nested query
//! expression, parameterized by the outer/inner block cardinalities the
//! paper sweeps. Selectivities are chosen so every query has a non-trivial
//! answer at every size.

use gmdj_algebra::ast::{exists, NestedPredicate, Quantifier, QueryExpr, SubqueryPred};
use gmdj_core::exec::MemoryCatalog;
use gmdj_relation::expr::{col, lit, CmpOp};
use gmdj_relation::schema::ColumnRef;

use crate::tpcr::{TpcrConfig, TpcrData};

/// A generated benchmark instance.
pub struct Workload {
    /// Figure identifier, e.g. `"fig2"`.
    pub name: &'static str,
    /// Human-readable description of the paper experiment.
    pub description: &'static str,
    pub catalog: MemoryCatalog,
    pub query: QueryExpr,
}

fn tpcr_catalog(customers: usize, orders: usize, parts: usize, seed: u64) -> MemoryCatalog {
    let cfg = TpcrConfig {
        customers,
        orders,
        lineitems: 1,
        parts,
        suppliers: 1,
        seed,
    };
    TpcrData::generate(&cfg).into_catalog()
}

/// Figure 2 — a nested query expression with an EXISTS subquery. "The
/// outer query block ranges over 1000 rows and the subquery block ranges
/// over 300k, 600k, 900k, and 1.2M rows."
pub fn fig2_exists(outer: usize, inner: usize, seed: u64) -> Workload {
    let catalog = tpcr_catalog(outer, inner, 1, seed);
    let sub = QueryExpr::table("orders", "O").select_flat(
        col("O.custkey")
            .eq(col("C.custkey"))
            .and(col("O.totalprice").gt(lit(250_000.0))),
    );
    let query = QueryExpr::table("customer", "C").select(exists(sub));
    Workload {
        name: "fig2",
        description: "EXISTS subquery (correlated semi-join shape)",
        catalog,
        query,
    }
}

/// Figure 3 — a comparison predicate over an aggregate function. "The
/// size of the outer query ranges from 500 to 2000 rows, and the inner
/// block ranges from 300k to 1.2M rows." The paper's native engine ran a
/// simple nested loop for this query.
pub fn fig3_aggregate_comparison(outer: usize, inner: usize, seed: u64) -> Workload {
    let catalog = tpcr_catalog(outer, inner, 1, seed);
    // C.acctbal * 30 < avg(totalprice of C's orders): both sides land in
    // comparable ranges, so the predicate is selective rather than
    // constant, and customers without orders compare against NULL.
    let sub = QueryExpr::table("orders", "O")
        .select_flat(col("O.custkey").eq(col("C.custkey")))
        .agg_project(gmdj_relation::agg::NamedAgg::new(
            gmdj_relation::agg::AggFunc::Avg,
            col("O.totalprice"),
            "avgprice",
        ));
    let pred = NestedPredicate::Subquery(SubqueryPred::Cmp {
        left: col("C.acctbal").mul(lit(30.0)),
        op: CmpOp::Lt,
        query: Box::new(sub),
    });
    let query = QueryExpr::table("customer", "C").select(pred);
    Workload {
        name: "fig3",
        description: "comparison predicate over an aggregate (avg) subquery",
        catalog,
        query,
    }
}

/// Figure 4 — the quantified comparison predicate ALL with a `<>`
/// correlation on two key attributes. "The table sizes for both the inner
/// and outer query" sweep 40k/80k/120k/160k.
pub fn fig4_quantified_all(rows: usize, seed: u64) -> Workload {
    let catalog = tpcr_catalog(1, 1, rows, seed);
    // P1 survives iff its retail price is ≥ that of every *other* part —
    // the correlation predicate is the non-indexable key inequality.
    let sub = QueryExpr::table("part", "P2")
        .select_flat(col("P1.partkey").ne(col("P2.partkey")))
        .project(vec![ColumnRef::parse("P2.retailprice")]);
    let pred = NestedPredicate::Subquery(SubqueryPred::Quantified {
        left: col("P1.retailprice"),
        op: CmpOp::Ge,
        quantifier: Quantifier::All,
        query: Box::new(sub),
    });
    let query = QueryExpr::table("part", "P1").select(pred);
    Workload {
        name: "fig4",
        description: "quantified ALL with <> correlation on key attributes",
        catalog,
        query,
    }
}

/// Figure 5 — two tree-nested EXISTS subqueries over the same table with
/// disjoint predicates ("it is impossible to combine the joins"), outer
/// block of 1000 rows, inner tables 300k–1.2M.
pub fn fig5_tree_exists(outer: usize, inner: usize, seed: u64) -> Workload {
    let catalog = tpcr_catalog(outer, inner, 1, seed);
    // Each customer expects ~1 matching order per subquery (priority 1/5 ×
    // price top-2% ≈ 0.4% of orders, ~300 orders per customer), so a
    // substantial fraction of customers has *no* match — and an unindexed
    // nested-loop EXISTS must scan the entire inner table to find that
    // out, which is precisely what Figure 5's unindexed series measure.
    let urgent = QueryExpr::table("orders", "O1").select_flat(
        col("O1.custkey")
            .eq(col("C.custkey"))
            .and(col("O1.orderpriority").eq(lit("1-URGENT")))
            .and(col("O1.totalprice").gt(lit(490_000.0))),
    );
    let low = QueryExpr::table("orders", "O2").select_flat(
        col("O2.custkey")
            .eq(col("C.custkey"))
            .and(col("O2.orderpriority").eq(lit("5-LOW")))
            .and(col("O2.totalprice").gt(lit(490_000.0))),
    );
    let query = QueryExpr::table("customer", "C").select(exists(urgent).and(exists(low)));
    Workload {
        name: "fig5",
        description: "two tree-nested EXISTS subqueries with disjoint predicates",
        catalog,
        query,
    }
}

/// The paper's parameter sweeps, per figure: `(outer, inner)` pairs.
pub mod sweeps {
    /// Figure 2: outer 1000, inner 300k–1.2M.
    pub const FIG2: [(usize, usize); 4] = [
        (1000, 300_000),
        (1000, 600_000),
        (1000, 900_000),
        (1000, 1_200_000),
    ];
    /// Figure 3: outer 500–2000 with inner 300k–1.2M.
    pub const FIG3: [(usize, usize); 4] = [
        (500, 300_000),
        (1000, 600_000),
        (1500, 900_000),
        (2000, 1_200_000),
    ];
    /// Figure 4: inner = outer = 40k–160k.
    pub const FIG4: [usize; 4] = [40_000, 80_000, 120_000, 160_000];
    /// Figure 5: outer 1000, inner 300k–1.2M.
    pub const FIG5: [(usize, usize); 4] = FIG2;
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmdj_engine::strategy::{run_all_agree, Strategy};

    fn small_strategies() -> Vec<Strategy> {
        vec![
            Strategy::NaiveNestedLoop,
            Strategy::NativeSmart,
            Strategy::NativeSmartNoIndex,
            Strategy::JoinUnnest,
            Strategy::JoinUnnestNoIndex,
            Strategy::GmdjBasic,
            Strategy::GmdjOptimized,
            Strategy::GmdjOptimizedNoProbeIndex,
        ]
    }

    #[test]
    fn fig2_all_strategies_agree_and_answer_nonempty() {
        // Seed chosen so some customer lacks an expensive order under the
        // vendored RNG stream (the assertion below needs n < 60).
        let w = fig2_exists(60, 600, 18);
        let results = run_all_agree(&w.query, &w.catalog, &small_strategies()).unwrap();
        let n = results[0].1.relation.len();
        assert!(n > 0 && n < 60, "selectivity degenerate: {n}");
    }

    #[test]
    fn fig3_all_strategies_agree_and_answer_nonempty() {
        let w = fig3_aggregate_comparison(50, 500, 12);
        let results = run_all_agree(&w.query, &w.catalog, &small_strategies()).unwrap();
        let n = results[0].1.relation.len();
        assert!(n > 0 && n < 50, "selectivity degenerate: {n}");
    }

    #[test]
    fn fig4_all_strategies_agree_and_answer_small() {
        let w = fig4_quantified_all(200, 13);
        let results = run_all_agree(&w.query, &w.catalog, &small_strategies()).unwrap();
        let n = results[0].1.relation.len();
        // Only the most expensive part(s) survive the ALL.
        assert!((1..=5).contains(&n), "got {n}");
    }

    #[test]
    fn fig5_all_strategies_agree_and_answer_nonempty() {
        // ~300 orders per customer, matching the paper-size ratio the
        // subquery selectivities are tuned for.
        let w = fig5_tree_exists(20, 6000, 14);
        let results = run_all_agree(&w.query, &w.catalog, &small_strategies()).unwrap();
        let n = results[0].1.relation.len();
        assert!(n > 0 && n < 20, "selectivity degenerate: {n}");
    }

    #[test]
    fn fig5_gmdj_optimized_coalesces() {
        let w = fig5_tree_exists(20, 100, 15);
        let text = gmdj_engine::strategy::explain_gmdj(&w.query, &w.catalog, true).unwrap();
        // One FilteredGMDJ with two blocks, not two GMDJs.
        assert!(text.contains("FilteredGMDJ (2 blocks)"), "{text}");
        assert!(text.contains("finish-early"), "{text}");
    }

    #[test]
    fn workloads_are_deterministic() {
        let a = fig2_exists(30, 300, 7);
        let b = fig2_exists(30, 300, 7);
        use gmdj_core::exec::TableProvider;
        assert!(a
            .catalog
            .table("orders")
            .unwrap()
            .multiset_eq(b.catalog.table("orders").unwrap()));
    }
}
