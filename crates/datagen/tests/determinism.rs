//! Seed determinism: the same seed must produce byte-identical tables
//! across runs (and across platforms — the generators use explicitly
//! seeded PRNGs, never OS entropy). Replayable benchmarks and fuzz repros
//! both depend on this.

use gmdj_datagen::netflow::{NetflowConfig, NetflowData};
use gmdj_datagen::tpcr::{TpcrConfig, TpcrData};
use gmdj_relation::csv::write_csv;
use gmdj_relation::relation::Relation;

/// Serialize a relation to CSV bytes, the byte-identity witness.
fn csv_bytes(rel: &Relation) -> Vec<u8> {
    let mut out = Vec::new();
    write_csv(rel, &mut out).expect("csv serialization succeeds");
    out
}

fn tpcr_tables(data: &TpcrData) -> Vec<(&'static str, &Relation)> {
    vec![
        ("customer", &data.customer),
        ("orders", &data.orders),
        ("lineitem", &data.lineitem),
        ("part", &data.part),
        ("supplier", &data.supplier),
        ("nation", &data.nation),
    ]
}

fn netflow_tables(data: &NetflowData) -> Vec<(&'static str, &Relation)> {
    vec![
        ("flow", &data.flow),
        ("hours", &data.hours),
        ("user", &data.user),
    ]
}

#[test]
fn tpcr_same_seed_is_byte_identical() {
    let a = TpcrData::generate(&TpcrConfig::tiny(42));
    let b = TpcrData::generate(&TpcrConfig::tiny(42));
    for ((name, ra), (_, rb)) in tpcr_tables(&a).into_iter().zip(tpcr_tables(&b)) {
        assert_eq!(
            csv_bytes(ra),
            csv_bytes(rb),
            "TPC-R table {name} differs between two runs of seed 42"
        );
    }
}

#[test]
fn tpcr_different_seeds_differ() {
    let a = TpcrData::generate(&TpcrConfig::tiny(42));
    let b = TpcrData::generate(&TpcrConfig::tiny(43));
    // The nation table is a fixed lookup; every generated table must
    // depend on the seed.
    let changed = tpcr_tables(&a)
        .into_iter()
        .zip(tpcr_tables(&b))
        .filter(|((name, _), _)| *name != "nation")
        .filter(|((_, ra), (_, rb))| csv_bytes(ra) != csv_bytes(rb))
        .count();
    assert_eq!(
        changed, 5,
        "every seeded TPC-R table must change with the seed"
    );
}

#[test]
fn netflow_same_seed_is_byte_identical() {
    let a = NetflowData::generate(&NetflowConfig::tiny(42));
    let b = NetflowData::generate(&NetflowConfig::tiny(42));
    for ((name, ra), (_, rb)) in netflow_tables(&a).into_iter().zip(netflow_tables(&b)) {
        assert_eq!(
            csv_bytes(ra),
            csv_bytes(rb),
            "netflow table {name} differs between two runs of seed 42"
        );
    }
}

#[test]
fn netflow_different_seeds_change_the_flow_table() {
    let a = NetflowData::generate(&NetflowConfig::tiny(42));
    let b = NetflowData::generate(&NetflowConfig::tiny(7));
    assert_ne!(
        csv_bytes(&a.flow),
        csv_bytes(&b.flow),
        "the flow fact table must depend on the seed"
    );
}
