//! The paper's *introduction* query, end to end:
//!
//! "On an hourly basis, what fraction of the traffic originating from IPs
//! for which there exist a user account is due to web traffic?"
//!
//! The subquery sits on the *detail* side of the OLAP aggregation (only
//! account-backed flows count toward either sum), exercising
//! translation-inside-detail for the GMDJ strategies and nested-loop /
//! unnest evaluation of the same expression for the baselines.

use gmdj_algebra::ast::{exists, QueryExpr};
use gmdj_core::spec::{AggBlock, GmdjSpec};
use gmdj_datagen::netflow::{NetflowConfig, NetflowData};
use gmdj_engine::olap::{Aggregation, OlapQuery};
use gmdj_engine::strategy::Strategy;
use gmdj_relation::expr::{col, lit};
use gmdj_relation::relation::Relation;

fn intro_query() -> OlapQuery {
    // Detail: flows whose source IP has a user account.
    let has_account =
        QueryExpr::table("User", "U").select_flat(col("U.IPAddress").eq(col("F.SourceIP")));
    let accounted_flows = QueryExpr::table("Flow", "F").select(exists(has_account));
    let in_hour = col("F.StartTime")
        .ge(col("H.StartInterval"))
        .and(col("F.StartTime").lt(col("H.EndInterval")));
    OlapQuery {
        base: QueryExpr::table("Hours", "H"),
        aggregation: Some(Aggregation {
            detail: accounted_flows,
            spec: GmdjSpec::new(vec![
                AggBlock::new(
                    in_hour.clone().and(col("F.Protocol").eq(lit("HTTP"))),
                    vec![gmdj_relation::agg::NamedAgg::sum(col("F.NumBytes"), "sum1")],
                ),
                AggBlock::new(
                    in_hour,
                    vec![gmdj_relation::agg::NamedAgg::sum(col("F.NumBytes"), "sum2")],
                ),
            ]),
            having: None,
        }),
        projection: vec![
            (col("H.HourDsc"), Some("hour".into())),
            (col("sum1").div(col("sum2")), Some("webFraction".into())),
        ],
    }
}

#[test]
fn introduction_query_all_strategies_agree() {
    let data = NetflowData::generate(&NetflowConfig {
        hours: 6,
        flows: 3_000,
        users: 15,
        source_ips: 40, // most source IPs have NO account
        seed: 21,
    });
    let catalog = data.into_catalog();
    let q = intro_query();
    let mut previous: Option<Relation> = None;
    for strat in [
        Strategy::NaiveNestedLoop,
        Strategy::NativeSmart,
        Strategy::JoinUnnest,
        Strategy::GmdjBasic,
        Strategy::GmdjOptimized,
        Strategy::GmdjCostBased,
    ] {
        let (rel, _) = q.run(&catalog, strat).unwrap();
        assert_eq!(rel.len(), 6, "{strat:?}: one row per hour");
        // Fractions are in [0, 1] (or NULL for hours with no accounted
        // traffic at all).
        for row in rel.rows() {
            if let Some(f) = row[1].as_f64() {
                assert!((0.0..=1.0).contains(&f), "{strat:?}: fraction {f}");
            }
        }
        if let Some(p) = &previous {
            assert!(p.multiset_eq(&rel), "{strat:?} disagrees");
        }
        previous = Some(rel);
    }
}

/// The accounted-flows restriction must matter: with every source IP
/// owned by an account the fractions revert to the unrestricted query.
#[test]
fn account_restriction_is_observable() {
    let cfg = NetflowConfig {
        hours: 6,
        flows: 3_000,
        users: 15,
        source_ips: 40,
        seed: 21,
    };
    let data = NetflowData::generate(&cfg);
    let catalog = data.into_catalog();
    let q = intro_query();
    let (restricted, stats) = q.run(&catalog, Strategy::GmdjOptimized).unwrap();
    assert!(stats.detail_scanned > 0);

    // All-IPs-have-accounts world: users == source_ips.
    let cfg_all = NetflowConfig { users: 40, ..cfg };
    let data_all = NetflowData::generate(&cfg_all);
    let catalog_all = data_all.into_catalog();
    let (unrestricted_equiv, _) = q.run(&catalog_all, Strategy::GmdjOptimized).unwrap();

    // Different account coverage ⇒ (almost surely) different totals.
    assert!(!restricted.multiset_eq(&unrestricted_equiv));
}
