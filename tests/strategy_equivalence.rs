//! Property test: every evaluation strategy computes the same answer as
//! tuple-iteration semantics, for randomized data (including NULLs and
//! duplicates) and randomized subquery shapes.
//!
//! This is the main correctness argument for the whole pipeline: the
//! SubqueryToGMDJ translation (Theorem 3.5), the Section 4 optimizations,
//! and the join-unnesting baseline must all be observationally equivalent
//! to the naive semantics.

use proptest::prelude::*;

use gmdj_algebra::ast::{NestedPredicate, Quantifier, QueryExpr, SubqueryPred};
use gmdj_core::exec::MemoryCatalog;
use gmdj_core::runtime::ExecPolicy;
use gmdj_engine::strategy::{run, run_with_policy, Strategy as EvalStrategy};
use gmdj_relation::agg::{AggFunc, NamedAgg};
use gmdj_relation::expr::{col, lit, CmpOp, Predicate, ScalarExpr};
use gmdj_relation::relation::Relation;
use gmdj_relation::schema::{ColumnRef, DataType, Schema};
use gmdj_relation::value::Value;

// ---------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------

/// Small integer domain with NULLs: collisions and empty correlated
/// ranges are common, which is where the bugs live.
fn value() -> impl Strategy<Value = Value> {
    prop_oneof![
        3 => (0i64..5).prop_map(Value::Int),
        1 => Just(Value::Null),
    ]
}

fn table(qualifier: &'static str, max_rows: usize) -> impl Strategy<Value = Relation> {
    let schema = Schema::qualified(qualifier, &[("a", DataType::Int), ("b", DataType::Int)]);
    proptest::collection::vec((value(), value()), 0..max_rows).prop_map(move |rows| {
        Relation::from_parts(
            schema.clone(),
            rows.into_iter()
                .map(|(a, b)| vec![a, b].into_boxed_slice())
                .collect(),
        )
    })
}

fn cmp_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

/// Correlation condition between the outer block (qualifier `B`) and an
/// inner table under `q`.
fn correlation(q: &'static str) -> impl Strategy<Value = Predicate> {
    prop_oneof![
        3 => (cmp_op()).prop_map(move |op| {
            ScalarExpr::Column(ColumnRef::qualified(q, "a"))
                .cmp_with(op, col("B.a"))
        }),
        1 => Just(Predicate::true_()),
        2 => (cmp_op(), 0i64..5).prop_map(move |(op, k)| {
            ScalarExpr::Column(ColumnRef::qualified(q, "b")).cmp_with(op, lit(k))
        }),
    ]
}

/// Conjunction of 1–2 correlation/local conjuncts.
fn theta(q: &'static str) -> impl Strategy<Value = Predicate> {
    proptest::collection::vec(correlation(q), 1..3).prop_map(Predicate::conjoin)
}

fn agg_func() -> impl Strategy<Value = AggFunc> {
    prop_oneof![
        Just(AggFunc::CountStar),
        Just(AggFunc::Count),
        Just(AggFunc::Sum),
        Just(AggFunc::Min),
        Just(AggFunc::Max),
        Just(AggFunc::Avg),
    ]
}

/// One subquery predicate over table `R` (qualifier `R1`).
fn subquery_pred() -> impl Strategy<Value = NestedPredicate> {
    let exists = theta("R1").prop_map(|t| {
        NestedPredicate::Subquery(SubqueryPred::Exists {
            query: Box::new(QueryExpr::table("R", "R1").select_flat(t)),
            negated: false,
        })
    });
    let not_exists = theta("R1").prop_map(|t| {
        NestedPredicate::Subquery(SubqueryPred::Exists {
            query: Box::new(QueryExpr::table("R", "R1").select_flat(t)),
            negated: true,
        })
    });
    let quantified = (theta("R1"), cmp_op(), proptest::bool::ANY).prop_map(|(t, op, all)| {
        NestedPredicate::Subquery(SubqueryPred::Quantified {
            left: col("B.a"),
            op,
            quantifier: if all {
                Quantifier::All
            } else {
                Quantifier::Some
            },
            query: Box::new(
                QueryExpr::table("R", "R1")
                    .select_flat(t)
                    .project(vec![ColumnRef::parse("R1.b")]),
            ),
        })
    });
    let in_pred = (theta("R1"), proptest::bool::ANY).prop_map(|(t, negated)| {
        NestedPredicate::Subquery(SubqueryPred::In {
            left: col("B.b"),
            query: Box::new(
                QueryExpr::table("R", "R1")
                    .select_flat(t)
                    .project(vec![ColumnRef::parse("R1.a")]),
            ),
            negated,
        })
    });
    let agg_cmp = (theta("R1"), cmp_op(), agg_func()).prop_map(|(t, op, f)| {
        NestedPredicate::Subquery(SubqueryPred::Cmp {
            left: col("B.a"),
            op,
            query: Box::new(
                QueryExpr::table("R", "R1")
                    .select_flat(t)
                    .agg_project(NamedAgg::new(f, col("R1.b"), "f")),
            ),
        })
    });
    prop_oneof![exists, not_exists, quantified, in_pred, agg_cmp]
}

/// A flat atom over the outer block.
fn outer_atom() -> impl Strategy<Value = NestedPredicate> {
    (cmp_op(), 0i64..5).prop_map(|(op, k)| NestedPredicate::Atom(col("B.a").cmp_with(op, lit(k))))
}

/// A full predicate: conjunctions/disjunctions/negations over subqueries
/// and atoms.
fn predicate() -> impl Strategy<Value = NestedPredicate> {
    let leaf = prop_oneof![3 => subquery_pred(), 1 => outer_atom()];
    leaf.prop_recursive(2, 6, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.prop_map(|a| a.not()),
        ]
    })
}

fn strategies() -> Vec<EvalStrategy> {
    vec![
        EvalStrategy::NaiveNestedLoop, // the oracle
        EvalStrategy::NativeSmart,
        EvalStrategy::NativeSmartNoIndex,
        EvalStrategy::JoinUnnest,
        EvalStrategy::JoinUnnestNoIndex,
        EvalStrategy::GmdjBasic,
        EvalStrategy::GmdjOptimized,
        EvalStrategy::GmdjOptimizedNoProbeIndex,
        EvalStrategy::GmdjBasicNoProbeIndex,
        EvalStrategy::GmdjCostBased,
    ]
}

/// Non-sequential policies every policy-sensitive strategy must also
/// agree under: answers are policy-invariant, only scheduling changes.
fn extra_policies() -> Vec<ExecPolicy> {
    vec![ExecPolicy::parallel(3), ExecPolicy::distributed(2)]
}

fn assert_all_agree(query: &QueryExpr, catalog: &MemoryCatalog) {
    let oracle = run(query, catalog, EvalStrategy::NaiveNestedLoop)
        .expect("oracle evaluation must succeed")
        .relation;
    for strat in strategies().into_iter().skip(1) {
        let got = run(query, catalog, strat)
            .unwrap_or_else(|e| panic!("{strat:?} failed on {query}: {e}"))
            .relation;
        assert!(
            oracle.multiset_eq(&got),
            "{strat:?} disagrees with tuple-iteration semantics on\n{query}\noracle \
             ({} rows):\n{oracle}\ngot ({} rows):\n{got}",
            oracle.len(),
            got.len(),
        );
        // The GMDJ strategies consume the execution policy; re-check them
        // under parallel and distributed runtimes.
        if matches!(
            strat,
            EvalStrategy::GmdjBasic
                | EvalStrategy::GmdjOptimized
                | EvalStrategy::GmdjBasicNoProbeIndex
                | EvalStrategy::GmdjOptimizedNoProbeIndex
                | EvalStrategy::GmdjCostBased
        ) {
            for policy in extra_policies() {
                let got = run_with_policy(query, catalog, strat, policy)
                    .unwrap_or_else(|e| panic!("{strat:?} under {policy:?} failed on {query}: {e}"))
                    .relation;
                assert!(
                    oracle.multiset_eq(&got),
                    "{strat:?} under {policy:?} disagrees with tuple-iteration semantics \
                     on\n{query}\noracle ({} rows):\n{oracle}\ngot ({} rows):\n{got}",
                    oracle.len(),
                    got.len(),
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    /// Single-level subqueries of every kind, under random boolean
    /// structure.
    #[test]
    fn all_strategies_agree_single_level(
        b in table("B", 10),
        r in table("R", 10),
        pred in predicate(),
    ) {
        let catalog = MemoryCatalog::new().with("B", b).with("R", r);
        let query = QueryExpr::table("B", "B").select(pred);
        assert_all_agree(&query, &catalog);
    }

    /// Linearly nested subqueries: the inner block correlates to the
    /// middle block (Theorem 3.2's shape).
    #[test]
    fn all_strategies_agree_linear_nesting(
        b in table("B", 8),
        r in table("R", 8),
        s in table("S", 8),
        mid_theta in theta("R1"),
        inner_op in cmp_op(),
        inner_negated in proptest::bool::ANY,
    ) {
        let catalog = MemoryCatalog::new().with("B", b).with("R", r).with("S", s);
        let inner = QueryExpr::table("S", "S1").select_flat(
            ScalarExpr::Column(ColumnRef::qualified("S1", "a"))
                .cmp_with(inner_op, ScalarExpr::Column(ColumnRef::qualified("R1", "b"))),
        );
        let mid = QueryExpr::table("R", "R1").select(
            NestedPredicate::Atom(mid_theta).and(NestedPredicate::Subquery(
                SubqueryPred::Exists { query: Box::new(inner), negated: inner_negated },
            )),
        );
        let query = QueryExpr::table("B", "B").select(NestedPredicate::Subquery(
            SubqueryPred::Exists { query: Box::new(mid), negated: false },
        ));
        assert_all_agree(&query, &catalog);
    }

    /// Non-neighboring correlation (Theorem 3.3/3.4 push-down): the
    /// innermost block references the outermost table.
    #[test]
    fn all_strategies_agree_non_neighboring(
        b in table("B", 6),
        r in table("R", 6),
        s in table("S", 6),
        deep_op in cmp_op(),
        mid_negated in proptest::bool::ANY,
    ) {
        let catalog = MemoryCatalog::new().with("B", b).with("R", r).with("S", s);
        let inner = QueryExpr::table("S", "S1").select_flat(
            ScalarExpr::Column(ColumnRef::qualified("S1", "a"))
                .cmp_with(deep_op, col("B.a")) // two levels up!
                .and(col("S1.b").eq(col("R1.b"))),
        );
        let mid = QueryExpr::table("R", "R1").select(NestedPredicate::Subquery(
            SubqueryPred::Exists { query: Box::new(inner), negated: mid_negated },
        ));
        let query = QueryExpr::table("B", "B").select(NestedPredicate::Subquery(
            SubqueryPred::Exists { query: Box::new(mid), negated: true },
        ));
        assert_all_agree(&query, &catalog);
    }

    /// Two subqueries over the same detail table — the coalescing path
    /// (Proposition 4.1) must not change results.
    #[test]
    fn all_strategies_agree_coalescable(
        b in table("B", 8),
        r in table("R", 10),
        t1 in theta("R1"),
        t2 in theta("R2"),
        neg1 in proptest::bool::ANY,
        neg2 in proptest::bool::ANY,
    ) {
        let catalog = MemoryCatalog::new().with("B", b).with("R", r);
        let s1 = NestedPredicate::Subquery(SubqueryPred::Exists {
            query: Box::new(QueryExpr::table("R", "R1").select_flat(t1)),
            negated: neg1,
        });
        // Rename R2's references: theta("R2") already produces them.
        let s2 = NestedPredicate::Subquery(SubqueryPred::Exists {
            query: Box::new(QueryExpr::table("R", "R2").select_flat(t2)),
            negated: neg2,
        });
        let query = QueryExpr::table("B", "B").select(s1.and(s2));
        assert_all_agree(&query, &catalog);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Socket-transport leg: a distributed policy re-run over real
    /// loopback TCP sites (`gmdj_core::wire`) must be observationally
    /// identical to the in-process transport — same result multiset and
    /// same closed-form network value counts. Only the byte counters
    /// differ: zero under the in-process transport, measured (and
    /// therefore nonzero) on the wire. Bounded to a handful of cases
    /// because each run binds real listeners and spawns site threads.
    #[test]
    fn real_sites_match_in_process_transport(
        b in table("B", 8),
        r in table("R", 10),
        pred in predicate(),
    ) {
        let catalog = MemoryCatalog::new().with("B", b).with("R", r);
        let query = QueryExpr::table("B", "B").select(pred);
        let policy = ExecPolicy::distributed(2);
        for strat in [
            EvalStrategy::GmdjBasic,
            EvalStrategy::GmdjOptimized,
            EvalStrategy::GmdjCostBased,
        ] {
            let sim = run_with_policy(&query, &catalog, strat, policy)
                .unwrap_or_else(|e| panic!("{strat:?} in-process failed on {query}: {e}"));
            let real = run_with_policy(&query, &catalog, strat, policy.with_real_sites(true))
                .unwrap_or_else(|e| panic!("{strat:?} over real sites failed on {query}: {e}"));
            prop_assert!(
                sim.relation.multiset_eq(&real.relation),
                "{strat:?}: socket transport changed the answer on\n{query}\nin-process \
                 ({} rows):\n{}\nreal sites ({} rows):\n{}",
                sim.relation.len(),
                sim.relation,
                real.relation.len(),
                real.relation,
            );
            let sn = sim.plan_stats.as_ref().expect("gmdj runs record plan stats").total_network();
            let rn = real.plan_stats.as_ref().expect("gmdj runs record plan stats").total_network();
            prop_assert_eq!(
                (sn.broadcast_values, sn.collected_states, sn.messages),
                (rn.broadcast_values, rn.collected_states, rn.messages),
                "{:?}: closed-form network value counts drifted between transports on\n{}",
                strat, query,
            );
            prop_assert_eq!(sn.bytes_sent + sn.bytes_received, 0,
                "in-process transport must not report wire bytes");
            prop_assert!(
                rn.bytes_sent > 0 && rn.bytes_received > 0,
                "real sites must measure wire traffic in both directions \
                 (got sent={} recv={})",
                rn.bytes_sent,
                rn.bytes_received,
            );
        }
    }
}
