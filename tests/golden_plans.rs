//! Golden EXPLAIN plans: the exact text of translated and optimized plans
//! for the paper's worked examples. These pin the translation and
//! optimizer output — any change to the emitted plans must be a conscious
//! one.

use gmdj_algebra::ast::{exists, not_exists, QueryExpr};
use gmdj_core::exec::MemoryCatalog;
use gmdj_engine::strategy::explain_gmdj;
use gmdj_relation::expr::{col, lit};
use gmdj_relation::relation::RelationBuilder;
use gmdj_relation::schema::{ColumnRef, DataType};

fn catalog() -> MemoryCatalog {
    let flow = RelationBuilder::new("Flow")
        .column("SourceIP", DataType::Str)
        .column("DestIP", DataType::Str)
        .column("StartTime", DataType::Int)
        .column("NumBytes", DataType::Int)
        .build()
        .unwrap();
    let hours = RelationBuilder::new("Hours")
        .column("HourDsc", DataType::Int)
        .column("StartInterval", DataType::Int)
        .column("EndInterval", DataType::Int)
        .build()
        .unwrap();
    MemoryCatalog::new().with("Flow", flow).with("Hours", hours)
}

/// Example 2.2's base table, translated (Example 3.1 of the paper).
#[test]
fn golden_example_3_1_basic_plan() {
    let inner = QueryExpr::table("Flow", "FI").select_flat(
        col("FI.DestIP")
            .eq(lit("167.167.167.0"))
            .and(col("FI.StartTime").ge(col("H.StartInterval")))
            .and(col("FI.StartTime").lt(col("H.EndInterval"))),
    );
    let q = QueryExpr::table("Hours", "H").select(exists(inner));
    let plan = explain_gmdj(&q, &catalog(), false).unwrap();
    let expected = "\
DropComputed [__cnt1]
  Select [__cnt1 > 0]
    GMDJ (1 blocks)
      · (count(*) → __cnt1) | θ: ((FI.DestIP = \"167.167.167.0\" ∧ FI.StartTime >= H.StartInterval) ∧ FI.StartTime < H.EndInterval)
      base:
        Scan Hours → H
      detail:
        Scan Flow → FI
";
    assert_eq!(plan, expected, "translated plan drifted:\n{plan}");
}

/// Example 2.3's base table, optimized (Example 4.1 of the paper): a
/// single coalesced GMDJ with fail-fast completion.
#[test]
fn golden_example_4_1_optimized_plan() {
    let flow_to = |q: &str, ip: &str| {
        QueryExpr::table("Flow", q).select_flat(
            col("F0.SourceIP")
                .eq(col(&format!("{q}.SourceIP")))
                .and(col(&format!("{q}.DestIP")).eq(lit(ip))),
        )
    };
    let q = QueryExpr::table("Flow", "F0")
        .project_distinct(vec![ColumnRef::parse("F0.SourceIP")])
        .select(
            not_exists(flow_to("F1", "167.167.167.0"))
                .and(exists(flow_to("F2", "168.168.168.0")))
                .and(not_exists(flow_to("F3", "169.169.169.0"))),
        );
    let plan = explain_gmdj(&q, &catalog(), true).unwrap();
    let expected = "\
FilteredGMDJ (3 blocks) σ[((__cnt1 = 0 ∧ __cnt2 > 0) ∧ __cnt3 = 0)] keep=base-only +completion(fail-fast)
  · (count(*) → __cnt1) | θ: (F0.SourceIP = F1.SourceIP ∧ F1.DestIP = \"167.167.167.0\")
  · (count(*) → __cnt2) | θ: (F0.SourceIP = F1.SourceIP ∧ F1.DestIP = \"168.168.168.0\")
  · (count(*) → __cnt3) | θ: (F0.SourceIP = F1.SourceIP ∧ F1.DestIP = \"169.169.169.0\")
  base:
    Project DISTINCT [F0.SourceIP]
      Scan Flow → F0
  detail:
    Scan Flow → F1
";
    assert_eq!(plan, expected, "optimized plan drifted:\n{plan}");
}
