//! Chaos suite for the socket-backed distributed transport
//! (`gmdj_core::wire`): every injectable site fault, in both fault
//! windows, across every evaluation strategy.
//!
//! The contract under test is the robustness model of the wire module:
//! a faulted site round-trip either **recovers exactly** (the retried
//! run is multiset-identical to the sequential answer — never an
//! approximation) or **fails cleanly** (an `Error` naming the site and
//! its address, within the configured deadlines — never a hang, never a
//! wrong answer). Every case runs under a watchdog so a regression that
//! deadlocks the coordinator fails the test instead of wedging CI.
//!
//! The fault plan and transport config are process-global (see
//! `gmdj_core::wire::install_fault_plan`), so every case serializes
//! behind one mutex and restores both on exit — panic included — via a
//! drop guard. Timeouts are shortened from the production defaults to
//! keep the whole matrix in CI-friendly time; the `Delay` fault is
//! sized past `io_timeout` so the coordinator provably abandons the
//! straggler rather than waiting it out.

use std::sync::mpsc;
use std::sync::Arc;
use std::sync::Mutex;
use std::thread;
use std::time::Duration;

use gmdj_algebra::ast::{NestedPredicate, QueryExpr, SubqueryPred};
use gmdj_core::exec::MemoryCatalog;
use gmdj_core::runtime::{ExecPolicy, PlanNodeStats, Runtime};
use gmdj_core::spec::{AggBlock, GmdjSpec};
use gmdj_core::trace::CollectingSink;
use gmdj_core::wire::{self, Fault, FaultPlan, FaultWindow, WireConfig};
use gmdj_engine::strategy::{run_with_policy, Strategy};
use gmdj_relation::agg::NamedAgg;
use gmdj_relation::expr::col;
use gmdj_relation::relation::{Relation, RelationBuilder};
use gmdj_relation::schema::{DataType, Schema};
use gmdj_relation::value::Value;

/// Serializes every chaos case: the fault plan and wire config are
/// process-global, and `cargo test` runs test functions concurrently.
static CHAOS_LOCK: Mutex<()> = Mutex::new(());

/// Short-deadline transport config for the matrix. `Delay` below is
/// sized against these numbers: longer than `io_timeout` (so the first
/// attempt provably times out) but short enough that the site thread is
/// free again before the retry's handshake deadline expires.
const CHAOS_CONFIG: WireConfig = WireConfig {
    connect_timeout: Duration::from_millis(1000),
    io_timeout: Duration::from_millis(250),
    max_attempts: 3,
    backoff: Duration::from_millis(20),
};

const DELAY_MS: u64 = 350;

/// Restores the process-global transport state when a case ends,
/// whether it returns or panics.
struct ChaosGuard;

impl Drop for ChaosGuard {
    fn drop(&mut self) {
        wire::install_fault_plan(None);
        wire::set_config(WireConfig::DEFAULT);
    }
}

fn chaos_setup(plan: FaultPlan) -> ChaosGuard {
    wire::set_config(CHAOS_CONFIG);
    wire::install_fault_plan(Some(plan));
    ChaosGuard
}

/// Deterministic workload: enough rows that both of the two sites own a
/// non-empty fragment, NULLs included, and a query whose GMDJ
/// translation carries more than one aggregate block.
fn catalog() -> MemoryCatalog {
    let b_schema = Schema::qualified("B", &[("a", DataType::Int), ("b", DataType::Int)]);
    let b_rows = (0..12)
        .map(|i| {
            let a = if i % 5 == 4 {
                Value::Null
            } else {
                Value::Int(i % 4)
            };
            vec![a, Value::Int(i % 3)].into_boxed_slice()
        })
        .collect();
    let r_schema = Schema::qualified("R", &[("a", DataType::Int), ("b", DataType::Int)]);
    let r_rows = (0..30)
        .map(|i| {
            let b = if i % 7 == 6 {
                Value::Null
            } else {
                Value::Int(i % 5)
            };
            vec![Value::Int(i % 6), b].into_boxed_slice()
        })
        .collect();
    MemoryCatalog::new()
        .with("B", Relation::from_parts(b_schema, b_rows))
        .with("R", Relation::from_parts(r_schema, r_rows))
}

fn query() -> QueryExpr {
    // EXISTS plus NOT IN over the same detail table: two subqueries, so
    // the translated GMDJ ships multiple aggregate columns per base row.
    let exists = NestedPredicate::Subquery(SubqueryPred::Exists {
        query: Box::new(QueryExpr::table("R", "R1").select_flat(col("R1.a").eq(col("B.a")))),
        negated: false,
    });
    let not_in = NestedPredicate::Subquery(SubqueryPred::In {
        left: col("B.b"),
        query: Box::new(
            QueryExpr::table("R", "R2")
                .select_flat(col("R2.a").ge(col("B.a")))
                .project(vec![gmdj_relation::schema::ColumnRef::parse("R2.b")]),
        ),
        negated: true,
    });
    QueryExpr::table("B", "B").select(exists.and(not_in))
}

/// The five strategies that route through the GMDJ runtime and hence
/// the socket transport under a distributed policy.
const GMDJ_STRATEGIES: [Strategy; 5] = [
    Strategy::GmdjBasic,
    Strategy::GmdjOptimized,
    Strategy::GmdjBasicNoProbeIndex,
    Strategy::GmdjOptimizedNoProbeIndex,
    Strategy::GmdjCostBased,
];

/// The rest of the lineup: they ignore the execution policy, never open
/// a socket, and must be oblivious to any installed fault plan.
const POLICY_FREE_STRATEGIES: [Strategy; 5] = [
    Strategy::NaiveNestedLoop,
    Strategy::NativeSmart,
    Strategy::NativeSmartNoIndex,
    Strategy::JoinUnnest,
    Strategy::JoinUnnestNoIndex,
];

/// Run `f` on a worker thread with a hang watchdog. A faulted transport
/// must resolve within its deadline arithmetic — attempts × (connect +
/// a few io_timeouts + backoff) — which under [`CHAOS_CONFIG`] is a few
/// seconds; 30 s of silence means the coordinator is wedged.
fn with_watchdog(name: &str, f: impl FnOnce() + Send + 'static) {
    let (tx, rx) = mpsc::channel();
    let handle = thread::Builder::new()
        .name(format!("chaos-{name}"))
        .spawn(move || {
            f();
            let _ = tx.send(());
        })
        .expect("spawn chaos worker");
    match rx.recv_timeout(Duration::from_secs(30)) {
        Ok(()) => handle.join().expect("chaos worker panicked"),
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            handle.join().expect("chaos worker panicked");
        }
        Err(mpsc::RecvTimeoutError::Timeout) => {
            panic!("{name}: watchdog expired — distributed run hung past every deadline")
        }
    }
}

/// One cell of the matrix: install `fault` at site 1 in `window`, run
/// every strategy under `distributed(2)` over real sockets, and assert
/// the contract for that window.
fn run_matrix_cell(fault: Fault, window: FaultWindow) {
    let _lock = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _guard = chaos_setup(FaultPlan::new().fault(1, fault, window));
    let catalog = catalog();
    let query = query();
    let policy = ExecPolicy::distributed(2).with_real_sites(true);

    for strat in GMDJ_STRATEGIES {
        let oracle = run_with_policy(&query, &catalog, strat, ExecPolicy::sequential())
            .unwrap_or_else(|e| panic!("{strat:?}: sequential run failed: {e}"))
            .relation;
        let result = run_with_policy(&query, &catalog, strat, policy);
        match window {
            FaultWindow::FirstAttemptOnly => {
                // The retry must recover *exactly*: bit-identical result
                // multiset, not a lossy answer missing the faulted
                // site's contribution.
                let got = result.unwrap_or_else(|e| {
                    panic!("{strat:?} under {fault:?}/retry did not recover: {e}")
                });
                assert!(
                    oracle.multiset_eq(&got.relation),
                    "{strat:?} under {fault:?}: retry recovered a WRONG answer\n\
                     sequential ({} rows):\n{oracle}\nrecovered ({} rows):\n{}",
                    oracle.len(),
                    got.relation.len(),
                    got.relation,
                );
            }
            FaultWindow::Always => {
                // Retries must exhaust into a clean diagnostic naming
                // the faulted site — never a wrong answer, never a hang.
                let err = match result {
                    Err(e) => e.to_string(),
                    Ok(got) => panic!(
                        "{strat:?} under {fault:?}/always: returned {} rows instead of \
                         failing (a permanently faulted site must not be silently dropped)",
                        got.relation.len()
                    ),
                };
                assert!(
                    err.contains("site1"),
                    "{strat:?} under {fault:?}: error does not name the faulted site: {err}"
                );
                assert!(
                    err.contains("attempts"),
                    "{strat:?} under {fault:?}: error does not mention retry exhaustion: {err}"
                );
            }
        }
    }

    // The policy-free strategies never touch the transport: the fault
    // plan must be invisible to them in both windows.
    for strat in POLICY_FREE_STRATEGIES {
        let got = run_with_policy(&query, &catalog, strat, ExecPolicy::sequential())
            .unwrap_or_else(|e| panic!("{strat:?} failed with a fault plan installed: {e}"));
        assert!(!got.relation.schema().fields().is_empty());
    }
}

macro_rules! chaos_case {
    ($name:ident, $fault:expr, $window:expr) => {
        #[test]
        fn $name() {
            with_watchdog(stringify!($name), || run_matrix_cell($fault, $window));
        }
    };
}

chaos_case!(
    crash_before_eval_recovers,
    Fault::CrashBeforeEval,
    FaultWindow::FirstAttemptOnly
);
chaos_case!(
    crash_before_eval_exhausts,
    Fault::CrashBeforeEval,
    FaultWindow::Always
);
chaos_case!(
    crash_after_eval_recovers,
    Fault::CrashAfterEval,
    FaultWindow::FirstAttemptOnly
);
chaos_case!(
    crash_after_eval_exhausts,
    Fault::CrashAfterEval,
    FaultWindow::Always
);
chaos_case!(
    truncated_frame_recovers,
    Fault::TruncateFrame,
    FaultWindow::FirstAttemptOnly
);
chaos_case!(
    truncated_frame_exhausts,
    Fault::TruncateFrame,
    FaultWindow::Always
);
chaos_case!(
    delayed_site_recovers,
    Fault::Delay { ms: DELAY_MS },
    FaultWindow::FirstAttemptOnly
);
chaos_case!(
    delayed_site_exhausts,
    Fault::Delay { ms: DELAY_MS },
    FaultWindow::Always
);
chaos_case!(
    garbled_length_recovers,
    Fault::GarbleLengthPrefix,
    FaultWindow::FirstAttemptOnly
);
chaos_case!(
    garbled_length_exhausts,
    Fault::GarbleLengthPrefix,
    FaultWindow::Always
);

/// A recovered run is observable: the retry increments the
/// `site_retries_total` metric, and the byte counters cover every
/// attempt (so a faulted round-trip reports *more* traffic than a clean
/// one, never less).
#[test]
fn recovery_is_visible_in_metrics_and_byte_counters() {
    with_watchdog("recovery_observability", || {
        let _lock = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let catalog = catalog();
        let query = query();
        let policy = ExecPolicy::distributed(2).with_real_sites(true);

        // Clean baseline first (no faults): capture per-run wire bytes.
        wire::set_config(CHAOS_CONFIG);
        let clean = run_with_policy(&query, &catalog, Strategy::GmdjOptimized, policy)
            .expect("clean real-sites run");
        let clean_net = clean
            .plan_stats
            .as_ref()
            .expect("gmdj runs record plan stats")
            .total_network();
        assert!(clean_net.bytes_sent > 0 && clean_net.bytes_received > 0);

        let _guard = chaos_setup(FaultPlan::new().fault(
            1,
            Fault::CrashAfterEval,
            FaultWindow::FirstAttemptOnly,
        ));
        let retries_before = gmdj_core::metrics::global().counter("site_retries_total");
        let recovered = run_with_policy(&query, &catalog, Strategy::GmdjOptimized, policy)
            .expect("faulted run must recover via retry");
        let retries_after = gmdj_core::metrics::global().counter("site_retries_total");
        assert!(
            retries_after > retries_before,
            "recovery did not increment site_retries_total \
             ({retries_before} -> {retries_after})"
        );
        assert!(clean.relation.multiset_eq(&recovered.relation));

        let net = recovered.plan_stats.as_ref().unwrap().total_network();
        assert!(
            net.bytes_sent > clean_net.bytes_sent,
            "retried run must count the faulted attempt's request bytes too \
             (clean {} vs faulted {})",
            clean_net.bytes_sent,
            net.bytes_sent,
        );
        // The value-count counters are closed forms of |B| and the spec:
        // identical whether or not a retry happened.
        assert_eq!(clean_net.broadcast_values, net.broadcast_values);
        assert_eq!(clean_net.collected_states, net.collected_states);
        assert_eq!(clean_net.messages, net.messages);
    });
}

/// Core-level workload for the stitched-trace cases: driving the
/// runtime directly (no engine wrapper) lets each case install its own
/// `CollectingSink` and inspect the coordinator's stitched span tree.
fn trace_workload() -> (Relation, Relation, GmdjSpec) {
    let mut b = RelationBuilder::new("B").column("Lo", DataType::Int);
    for lo in [0, 10, 20, 30] {
        b = b.row(vec![lo.into()]);
    }
    let mut d = RelationBuilder::new("F")
        .column("T", DataType::Int)
        .column("V", DataType::Int);
    for t in 0..24 {
        d = d.row(vec![(t * 2).into(), (t % 5).into()]);
    }
    let spec = GmdjSpec::new(vec![AggBlock::new(
        col("F.T").ge(col("B.Lo")),
        vec![NamedAgg::sum(col("F.V"), "s")],
    )]);
    (b.build().unwrap(), d.build().unwrap(), spec)
}

/// The stitched trace under every fault: a failed attempt's site-side
/// spans die with that attempt's sink, so the coordinator tree carries
/// spans from the successful attempt only — exactly once per round-trip
/// — and a retry-exhausted site contributes no stitched spans at all.
#[test]
fn failed_attempts_never_reach_the_stitched_trace() {
    with_watchdog("stitched_trace", || {
        let _lock = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let (base, detail, spec) = trace_workload();
        let policy = ExecPolicy::distributed(2).with_real_sites(true);
        let faults = [
            Fault::CrashBeforeEval,
            Fault::CrashAfterEval,
            Fault::TruncateFrame,
            Fault::Delay { ms: DELAY_MS },
            Fault::GarbleLengthPrefix,
        ];
        for fault in faults {
            // Recovery window: site 1 fails attempt 0, succeeds on 1.
            {
                let _guard =
                    chaos_setup(FaultPlan::new().fault(1, fault, FaultWindow::FirstAttemptOnly));
                let sink = Arc::new(CollectingSink::new());
                let mut node = PlanNodeStats::new("GMDJ");
                Runtime::with_sink(policy, sink.clone())
                    .eval_gmdj(&base, &detail, &spec, &mut node)
                    .unwrap_or_else(|e| panic!("{fault:?}/retry did not recover: {e}"));

                let evals = sink.by_name("site.eval");
                let roundtrips = sink.by_name("site.roundtrip");
                assert_eq!(
                    evals.len(),
                    roundtrips.len(),
                    "{fault:?}: expected exactly one stitched site.eval per round-trip"
                );
                // Each stitched span names a distinct coordinator
                // round-trip — a double stitch would repeat a parent id.
                let mut parents: Vec<u64> = evals
                    .iter()
                    .map(|e| {
                        e.field("parent_span")
                            .expect("stitched span carries parent")
                    })
                    .collect();
                parents.sort_unstable();
                parents.dedup();
                assert_eq!(parents.len(), evals.len(), "{fault:?}: duplicated stitch");
                for ev in &evals {
                    let site = ev.field("site").unwrap();
                    let attempt = ev.field("attempt").unwrap();
                    if site == 1 {
                        assert_eq!(
                            attempt, 1,
                            "{fault:?}: the faulted site's stitched span must come from \
                             the retry, never the failed attempt"
                        );
                    } else {
                        assert_eq!(attempt, 0, "{fault:?}: clean site retried unexpectedly");
                    }
                }
            }
            // Exhaustion window: the faulted site never ships spans.
            {
                let _guard = chaos_setup(FaultPlan::new().fault(1, fault, FaultWindow::Always));
                let sink = Arc::new(CollectingSink::new());
                let mut node = PlanNodeStats::new("GMDJ");
                let err = Runtime::with_sink(policy, sink.clone())
                    .eval_gmdj(&base, &detail, &spec, &mut node)
                    .err()
                    .unwrap_or_else(|| panic!("{fault:?}/always must exhaust into an error"));
                let msg = err.to_string();
                assert!(msg.contains("site1"), "{fault:?}: {msg}");
                assert!(msg.contains("attempts"), "{fault:?}: {msg}");
                for ev in sink.by_name("site.eval") {
                    assert_ne!(
                        ev.field("site"),
                        Some(1),
                        "{fault:?}: a retry-exhausted site must not contribute stitched spans"
                    );
                }
            }
        }
    });
}

/// Faults at every site at once: retries recover each independently.
#[test]
fn all_sites_faulted_still_recovers() {
    with_watchdog("all_sites_faulted", || {
        let _lock = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let _guard = chaos_setup(
            FaultPlan::new()
                .fault(0, Fault::TruncateFrame, FaultWindow::FirstAttemptOnly)
                .fault(1, Fault::CrashBeforeEval, FaultWindow::FirstAttemptOnly),
        );
        let catalog = catalog();
        let query = query();
        let oracle = run_with_policy(
            &query,
            &catalog,
            Strategy::GmdjOptimized,
            ExecPolicy::sequential(),
        )
        .unwrap()
        .relation;
        let got = run_with_policy(
            &query,
            &catalog,
            Strategy::GmdjOptimized,
            ExecPolicy::distributed(2).with_real_sites(true),
        )
        .expect("both faulted sites must recover")
        .relation;
        assert!(oracle.multiset_eq(&got), "oracle:\n{oracle}\ngot:\n{got}");
    });
}
