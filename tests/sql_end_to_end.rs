//! SQL text → parser → nested algebra → all strategies, over generated
//! TPC-R-style data.

use gmdj_core::exec::MemoryCatalog;
use gmdj_datagen::tpcr::{TpcrConfig, TpcrData};
use gmdj_engine::strategy::{run, run_all_agree, Strategy};
use gmdj_sql::parse_query;

fn catalog() -> MemoryCatalog {
    TpcrData::generate(&TpcrConfig {
        customers: 40,
        orders: 150,
        lineitems: 300,
        parts: 25,
        suppliers: 12,
        seed: 99,
    })
    .into_catalog()
}

fn lineup() -> Vec<Strategy> {
    vec![
        Strategy::NaiveNestedLoop,
        Strategy::NativeSmart,
        Strategy::NativeSmartNoIndex,
        Strategy::JoinUnnest,
        Strategy::JoinUnnestNoIndex,
        Strategy::GmdjBasic,
        Strategy::GmdjOptimized,
        Strategy::GmdjOptimizedNoProbeIndex,
    ]
}

fn check(sql: &str) -> usize {
    let q = parse_query(sql).unwrap_or_else(|e| panic!("parse failed for {sql}: {e}"));
    let results = run_all_agree(&q, &catalog(), &lineup())
        .unwrap_or_else(|e| panic!("execution failed for {sql}: {e}"));
    results[0].1.relation.len()
}

#[test]
fn exists_subquery() {
    let n = check(
        "SELECT c.custkey FROM customer c WHERE EXISTS \
         (SELECT * FROM orders o WHERE o.custkey = c.custkey AND o.totalprice > 100000)",
    );
    assert!(n > 0 && n < 40, "{n}");
}

#[test]
fn not_exists_subquery() {
    let n = check(
        "SELECT c.custkey FROM customer c WHERE NOT EXISTS \
         (SELECT * FROM orders o WHERE o.custkey = c.custkey)",
    );
    assert!(n > 0, "some customer must lack orders at this density");
}

#[test]
fn in_and_not_in() {
    let a = check(
        "SELECT c.custkey FROM customer c WHERE c.custkey IN \
         (SELECT o.custkey FROM orders o WHERE o.totalprice > 200000)",
    );
    let b = check(
        "SELECT c.custkey FROM customer c WHERE c.custkey NOT IN \
         (SELECT o.custkey FROM orders o WHERE o.totalprice > 200000)",
    );
    assert_eq!(
        a + b,
        40,
        "IN and NOT IN partition the customers (no NULL keys)"
    );
}

#[test]
fn quantified_any_and_all() {
    let any = check(
        "SELECT p.partkey FROM part p WHERE p.retailprice > ANY \
         (SELECT p2.retailprice FROM part p2 WHERE p2.partkey <> p.partkey)",
    );
    let all = check(
        "SELECT p.partkey FROM part p WHERE p.retailprice >= ALL \
         (SELECT p2.retailprice FROM part p2 WHERE p2.partkey <> p.partkey)",
    );
    assert!(
        any >= 24,
        "everything but the cheapest beats something: {any}"
    );
    assert!(
        (1..=3).contains(&all),
        "only the most expensive beats everything: {all}"
    );
}

#[test]
fn scalar_aggregate_comparison() {
    let n = check(
        "SELECT l.orderkey FROM lineitem l WHERE l.quantity > \
         (SELECT AVG(l2.quantity) FROM lineitem l2 WHERE l2.partkey = l.partkey)",
    );
    assert!(n > 0 && n < 300, "{n}");
}

#[test]
fn nested_two_levels() {
    // Customers with an urgent order whose clerk also booked a low order.
    let n = check(
        "SELECT c.custkey FROM customer c WHERE EXISTS \
         (SELECT * FROM orders o WHERE o.custkey = c.custkey AND EXISTS \
            (SELECT * FROM orders o2 WHERE o2.clerk = o.clerk AND o2.orderkey <> o.orderkey))",
    );
    assert!(n <= 40);
}

#[test]
fn disjunction_of_subqueries() {
    let n = check(
        "SELECT c.custkey FROM customer c WHERE EXISTS \
         (SELECT * FROM orders o WHERE o.custkey = c.custkey AND o.totalprice > 400000) \
         OR c.acctbal > 9000",
    );
    assert!(n > 0);
}

#[test]
fn mixed_conjunction_with_flat_predicates() {
    let n = check(
        "SELECT c.custkey FROM customer c \
         WHERE c.acctbal > 0 \
           AND c.custkey IN (SELECT o.custkey FROM orders o) \
           AND NOT EXISTS (SELECT * FROM orders o2 \
                           WHERE o2.custkey = c.custkey AND o2.totalprice > 450000)",
    );
    assert!(n < 40);
}

#[test]
fn not_over_subquery_normalizes() {
    // NOT (x IN S) must behave exactly like x NOT IN S.
    let a = check(
        "SELECT c.custkey FROM customer c WHERE NOT (c.custkey IN \
         (SELECT o.custkey FROM orders o))",
    );
    let b = check(
        "SELECT c.custkey FROM customer c WHERE c.custkey NOT IN \
         (SELECT o.custkey FROM orders o)",
    );
    assert_eq!(a, b);
}

#[test]
fn uncorrelated_subqueries() {
    let n = check(
        "SELECT s.suppkey FROM supplier s WHERE s.acctbal > \
         (SELECT AVG(s2.acctbal) FROM supplier s2)",
    );
    assert!(n > 0 && n < 12);
}

#[test]
fn explain_of_sql_query_via_gmdj() {
    let q = parse_query(
        "SELECT c.custkey FROM customer c WHERE EXISTS \
         (SELECT * FROM orders o WHERE o.custkey = c.custkey)",
    )
    .unwrap();
    let plan = gmdj_engine::strategy::explain_gmdj(&q, &catalog(), true).unwrap();
    assert!(plan.contains("FilteredGMDJ"), "{plan}");
    assert!(plan.contains("keep=base-only"), "{plan}");
    // The GMDJ run agrees with the reference.
    let r1 = run(&q, &catalog(), Strategy::NaiveNestedLoop).unwrap();
    let r2 = run(&q, &catalog(), Strategy::GmdjOptimized).unwrap();
    assert!(r1.relation.multiset_eq(&r2.relation));
}
