//! Subqueries over *grouped* sources: EXISTS / comparison subqueries whose
//! FROM is itself a GROUP BY — exercising the block-boundary behaviour of
//! peel_block and the General-body paths of every strategy.

use gmdj_algebra::ast::{exists, NestedPredicate, QueryExpr, SubqueryPred};
use gmdj_core::exec::MemoryCatalog;
use gmdj_engine::strategy::{run_all_agree, Strategy};
use gmdj_relation::agg::NamedAgg;
use gmdj_relation::expr::{col, lit, CmpOp};
use gmdj_relation::relation::RelationBuilder;
use gmdj_relation::schema::{ColumnRef, DataType};

fn catalog() -> MemoryCatalog {
    let customers = RelationBuilder::new("c")
        .column("custkey", DataType::Int)
        .column("tier", DataType::Int)
        .row(vec![1.into(), 1.into()])
        .row(vec![2.into(), 2.into()])
        .row(vec![3.into(), 1.into()])
        .row(vec![4.into(), 3.into()])
        .build()
        .unwrap();
    let orders = RelationBuilder::new("o")
        .column("custkey", DataType::Int)
        .column("total", DataType::Int)
        .row(vec![1.into(), 10.into()])
        .row(vec![1.into(), 20.into()])
        .row(vec![1.into(), 30.into()])
        .row(vec![2.into(), 40.into()])
        .row(vec![3.into(), 5.into()])
        .row(vec![3.into(), 5.into()])
        .build()
        .unwrap();
    MemoryCatalog::new()
        .with("customer", customers)
        .with("orders", orders)
}

fn strategies() -> Vec<Strategy> {
    vec![
        Strategy::NaiveNestedLoop,
        Strategy::NativeSmart,
        Strategy::NativeSmartNoIndex,
        Strategy::JoinUnnest,
        Strategy::JoinUnnestNoIndex,
        Strategy::GmdjBasic,
        Strategy::GmdjOptimized,
    ]
}

/// Grouped orders as the subquery source: customers with ≥ 2 orders.
fn grouped_orders() -> QueryExpr {
    QueryExpr::table("orders", "o").group_by(
        vec![ColumnRef::parse("o.custkey")],
        vec![
            NamedAgg::count_star("n"),
            NamedAgg::sum(col("o.total"), "s"),
        ],
    )
}

#[test]
fn exists_over_grouped_source() {
    // Customers that appear in the grouped orders with n >= 2.
    let sub = grouped_orders().select_flat(
        col("o.custkey")
            .eq(col("c.custkey"))
            .and(col("n").ge(lit(2))),
    );
    let q = QueryExpr::table("customer", "c").select(exists(sub));
    let results = run_all_agree(&q, &catalog(), &strategies()).unwrap();
    // Customers 1 (3 orders) and 3 (2 orders).
    assert_eq!(results[0].1.relation.len(), 2);
}

#[test]
fn scalar_comparison_over_grouped_source() {
    // tier * 25 < (sum of this customer's orders, from the grouped view).
    let sub = grouped_orders()
        .select_flat(col("o.custkey").eq(col("c.custkey")))
        .project(vec![ColumnRef::parse("s")]);
    let pred = NestedPredicate::Subquery(SubqueryPred::Cmp {
        left: col("c.tier").mul(lit(25)),
        op: CmpOp::Lt,
        query: Box::new(sub),
    });
    let q = QueryExpr::table("customer", "c").select(pred);
    let results = run_all_agree(&q, &catalog(), &strategies()).unwrap();
    // c1: 25 < 60 ✓; c2: 50 < 40 ✗; c3: 25 < 10 ✗; c4: no group → NULL →
    // unknown ✗.
    assert_eq!(results[0].1.relation.len(), 1);
    assert_eq!(
        results[0].1.relation.rows()[0][0],
        gmdj_relation::value::Value::Int(1)
    );
}

#[test]
fn quantified_over_grouped_source() {
    // tier >= ALL (counts of every customer's orders) — only tier 3 beats
    // a max group size of 3.
    let sub = grouped_orders().project(vec![ColumnRef::parse("n")]);
    let pred = NestedPredicate::Subquery(SubqueryPred::Quantified {
        left: col("c.tier"),
        op: CmpOp::Ge,
        quantifier: gmdj_algebra::ast::Quantifier::All,
        query: Box::new(sub),
    });
    let q = QueryExpr::table("customer", "c").select(pred);
    let results = run_all_agree(&q, &catalog(), &strategies()).unwrap();
    assert_eq!(results[0].1.relation.len(), 1);
    assert_eq!(
        results[0].1.relation.rows()[0][1],
        gmdj_relation::value::Value::Int(3)
    );
}

#[test]
fn having_inside_subquery_source() {
    // EXISTS over grouped-with-having: σ[n > 2](γ(orders)) correlated on
    // the key.
    let sub = grouped_orders()
        .select_flat(col("n").gt(lit(2)))
        .select_flat(col("o.custkey").eq(col("c.custkey")));
    let q = QueryExpr::table("customer", "c").select(exists(sub));
    let results = run_all_agree(&q, &catalog(), &strategies()).unwrap();
    // Only customer 1 has more than two orders.
    assert_eq!(results[0].1.relation.len(), 1);
}
