//! SQL text → parser → nested algebra → Runtime under every execution
//! policy. This is the shell-equivalent acceptance check: the answer a
//! user gets from `gmdj-sql-shell --threads N` (or `SET threads = N;`)
//! must be bit-identical to the sequential one, for every strategy that
//! can honor the policy.

use gmdj_core::exec::MemoryCatalog;
use gmdj_core::runtime::ExecPolicy;
use gmdj_datagen::tpcr::{TpcrConfig, TpcrData};
use gmdj_engine::strategy::{run_with_policy, Strategy};
use gmdj_sql::parse_query;

fn catalog() -> MemoryCatalog {
    TpcrData::generate(&TpcrConfig {
        customers: 40,
        orders: 150,
        lineitems: 300,
        parts: 25,
        suppliers: 12,
        seed: 7,
    })
    .into_catalog()
}

const QUERIES: [&str; 3] = [
    "SELECT c.custkey FROM customer c WHERE EXISTS \
     (SELECT * FROM orders o WHERE o.custkey = c.custkey AND o.totalprice > 100000)",
    "SELECT c.custkey FROM customer c WHERE NOT EXISTS \
     (SELECT * FROM orders o WHERE o.custkey = c.custkey)",
    "SELECT c.custkey FROM customer c WHERE c.custkey IN \
     (SELECT o.custkey FROM orders o WHERE o.totalprice > 200000)",
];

fn policies() -> [ExecPolicy; 4] {
    [
        ExecPolicy::parallel(2),
        ExecPolicy::parallel(4),
        ExecPolicy::parallel(4).with_partition_rows(Some(16)),
        ExecPolicy::distributed(3),
    ]
}

#[test]
fn every_policy_answers_like_sequential_from_sql() {
    let catalog = catalog();
    for sql in QUERIES {
        let query = parse_query(sql).unwrap_or_else(|e| panic!("parse failed for {sql}: {e}"));
        for strategy in [
            Strategy::GmdjBasic,
            Strategy::GmdjOptimized,
            Strategy::GmdjCostBased,
        ] {
            let seq = run_with_policy(&query, &catalog, strategy, ExecPolicy::sequential())
                .unwrap_or_else(|e| panic!("sequential failed for {sql}: {e}"));
            for policy in policies() {
                let got = run_with_policy(&query, &catalog, strategy, policy)
                    .unwrap_or_else(|e| panic!("{policy:?} failed for {sql}: {e}"));
                assert!(
                    seq.relation.multiset_eq(&got.relation),
                    "{strategy:?} under {policy:?} diverged from sequential on {sql}"
                );
            }
        }
    }
}

#[test]
fn parallel_policy_reports_plan_stats_from_sql() {
    let catalog = catalog();
    let query = parse_query(QUERIES[0]).unwrap();
    let result = run_with_policy(
        &query,
        &catalog,
        Strategy::GmdjOptimized,
        ExecPolicy::parallel(3),
    )
    .unwrap();
    let tree = result
        .plan_stats
        .expect("GMDJ strategies record a per-node stats tree");
    let eval = tree.total_eval();
    assert!(
        eval.detail_scanned > 0,
        "the GMDJ node must have scanned the detail table"
    );
    assert!(
        tree.total_scanned() > 0,
        "table scans must be attributed to leaf nodes"
    );
}
