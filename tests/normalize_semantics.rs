//! Semantic preservation of negation normalization: the normalized query
//! must compute the same relation as the original under tuple-iteration
//! semantics — the property that justifies running the preamble of
//! Algorithm SubqueryToGMDJ at all.

use proptest::prelude::*;

use gmdj_algebra::ast::{NestedPredicate, Quantifier, QueryExpr, SubqueryPred};
use gmdj_algebra::normalize::normalize_negations;
use gmdj_core::exec::MemoryCatalog;
use gmdj_engine::reference::{self, RefOptions};
use gmdj_relation::expr::{col, lit, CmpOp, ScalarExpr};
use gmdj_relation::relation::Relation;
use gmdj_relation::schema::{ColumnRef, DataType, Schema};
use gmdj_relation::value::Value;

fn value() -> impl Strategy<Value = Value> {
    prop_oneof![
        4 => (0i64..4).prop_map(Value::Int),
        1 => Just(Value::Null),
    ]
}

fn relation(qualifier: &'static str) -> impl Strategy<Value = Relation> {
    let schema = Schema::qualified(qualifier, &[("a", DataType::Int), ("b", DataType::Int)]);
    proptest::collection::vec((value(), value()), 0..9).prop_map(move |rows| {
        Relation::from_parts(
            schema.clone(),
            rows.into_iter()
                .map(|(a, b)| vec![a, b].into_boxed_slice())
                .collect(),
        )
    })
}

fn cmp_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

fn leaf() -> impl Strategy<Value = NestedPredicate> {
    let atom = (cmp_op(), 0i64..4).prop_map(|(op, k)| {
        NestedPredicate::Atom(
            ScalarExpr::Column(ColumnRef::qualified("B", "a")).cmp_with(op, lit(k)),
        )
    });
    let is_null = proptest::bool::ANY.prop_map(|neg| {
        NestedPredicate::Atom(if neg {
            gmdj_relation::expr::Predicate::IsNotNull(col("B.b"))
        } else {
            gmdj_relation::expr::Predicate::IsNull(col("B.b"))
        })
    });
    let exists = (proptest::bool::ANY, cmp_op()).prop_map(|(negated, op)| {
        NestedPredicate::Subquery(SubqueryPred::Exists {
            query: Box::new(QueryExpr::table("R", "R1").select_flat(
                ScalarExpr::Column(ColumnRef::qualified("R1", "a")).cmp_with(op, col("B.a")),
            )),
            negated,
        })
    });
    let quantified = (cmp_op(), proptest::bool::ANY, cmp_op()).prop_map(|(op, all, t)| {
        NestedPredicate::Subquery(SubqueryPred::Quantified {
            left: col("B.a"),
            op,
            quantifier: if all {
                Quantifier::All
            } else {
                Quantifier::Some
            },
            query: Box::new(
                QueryExpr::table("R", "R1")
                    .select_flat(
                        ScalarExpr::Column(ColumnRef::qualified("R1", "b")).cmp_with(t, col("B.b")),
                    )
                    .project(vec![ColumnRef::parse("R1.b")]),
            ),
        })
    });
    let in_pred = proptest::bool::ANY.prop_map(|negated| {
        NestedPredicate::Subquery(SubqueryPred::In {
            left: col("B.a"),
            query: Box::new(QueryExpr::table("R", "R1").project(vec![ColumnRef::parse("R1.a")])),
            negated,
        })
    });
    prop_oneof![atom, is_null, exists, quantified, in_pred]
}

fn predicate() -> impl Strategy<Value = NestedPredicate> {
    leaf().prop_recursive(3, 10, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.prop_map(|p| p.not()),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 192, ..ProptestConfig::default() })]

    /// `eval(normalize(q)) = eval(q)` under tuple-iteration semantics,
    /// with NULLs present — the 3VL-exactness of the rewrite rules.
    #[test]
    fn normalization_preserves_semantics(
        b in relation("B"),
        r in relation("R"),
        pred in predicate(),
    ) {
        let catalog = MemoryCatalog::new().with("B", b).with("R", r);
        let original = QueryExpr::table("B", "B").select(pred);
        let normalized = normalize_negations(&original);
        let opts = RefOptions { smart: false, indexed: false };
        let (before, _) = reference::eval(&original, &catalog, &opts).unwrap();
        let (after, _) = reference::eval(&normalized, &catalog, &opts).unwrap();
        prop_assert!(
            before.multiset_eq(&after),
            "normalization changed the answer:\n{original}\n→\n{normalized}\n\
             before: {} rows, after: {} rows",
            before.len(),
            after.len()
        );
    }
}
