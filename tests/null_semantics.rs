//! Three-valued-logic traps, pinned against hand-computed answers and
//! cross-checked over every strategy × every execution policy.
//!
//! SQL's NULL semantics concentrate the classic subquery bugs:
//!
//! * `x NOT IN (subquery)` is never TRUE once the subquery output
//!   contains a NULL — `x <> NULL` is UNKNOWN, and `ALL` needs TRUE
//!   everywhere.
//! * `x op ALL (empty range)` is vacuously TRUE — even for `x` NULL —
//!   which the count-pair GMDJ encoding must reproduce as `0 = 0`.
//! * A scalar aggregate over an empty range is NULL (UNKNOWN in any
//!   comparison) for every function except COUNT, which is 0.
//!
//! Each query goes through the real SQL front end (parse → lower) so the
//! tests cover the same pipeline the fuzz harness drives.

use gmdj_core::exec::MemoryCatalog;
use gmdj_core::runtime::ExecPolicy;
use gmdj_engine::strategy::{run_with_policy, Strategy};
use gmdj_relation::relation::{Relation, RelationBuilder};
use gmdj_relation::schema::DataType;
use gmdj_relation::value::Value;
use gmdj_sql::parse_query;

fn int(v: i64) -> Value {
    Value::Int(v)
}

/// B = {(0,1), (1,4), (3,9), (NULL,2)}
fn table_b() -> Relation {
    RelationBuilder::new("B")
        .column("a", DataType::Int)
        .column("b", DataType::Int)
        .row(vec![int(0), int(1)])
        .row(vec![int(1), int(4)])
        .row(vec![int(3), int(9)])
        .row(vec![Value::Null, int(2)])
        .build()
        .expect("B builds")
}

/// S = {(0,1), (1,NULL), (2,5)}
fn table_s() -> Relation {
    RelationBuilder::new("S")
        .column("a", DataType::Int)
        .column("b", DataType::Int)
        .row(vec![int(0), int(1)])
        .row(vec![int(1), Value::Null])
        .row(vec![int(2), int(5)])
        .build()
        .expect("S builds")
}

fn catalog() -> MemoryCatalog {
    MemoryCatalog::new()
        .with("B", table_b())
        .with("S", table_s())
}

fn all_strategies() -> Vec<Strategy> {
    vec![
        Strategy::NaiveNestedLoop,
        Strategy::NativeSmart,
        Strategy::NativeSmartNoIndex,
        Strategy::JoinUnnest,
        Strategy::JoinUnnestNoIndex,
        Strategy::GmdjBasic,
        Strategy::GmdjOptimized,
        Strategy::GmdjBasicNoProbeIndex,
        Strategy::GmdjOptimizedNoProbeIndex,
        Strategy::GmdjCostBased,
    ]
}

fn policies() -> Vec<ExecPolicy> {
    vec![
        ExecPolicy::sequential(),
        ExecPolicy::parallel(3),
        ExecPolicy::distributed(2),
    ]
}

/// Run `sql` under every strategy × policy and assert the result always
/// has exactly `expected_rows` rows and matches the oracle as a multiset.
fn assert_rows(sql: &str, expected_rows: usize) {
    let catalog = catalog();
    let query = parse_query(sql).expect("query parses");
    let oracle = run_with_policy(
        &query,
        &catalog,
        Strategy::NaiveNestedLoop,
        ExecPolicy::sequential(),
    )
    .expect("oracle succeeds")
    .relation;
    assert_eq!(
        oracle.len(),
        expected_rows,
        "oracle disagrees with the hand computation for {sql}\n{oracle}"
    );
    for strat in all_strategies() {
        for policy in policies() {
            let got = run_with_policy(&query, &catalog, strat, policy)
                .unwrap_or_else(|e| panic!("{strat:?} under {policy:?} failed on {sql}: {e}"))
                .relation;
            assert!(
                oracle.multiset_eq(&got),
                "{strat:?} under {policy:?} diverges on {sql}\noracle:\n{oracle}\ngot:\n{got}"
            );
        }
    }
}

#[test]
fn not_in_with_null_in_subquery_is_never_true() {
    // S.b = {1, NULL, 5}: `B.b NOT IN S.b` is UNKNOWN for every B.b that
    // matches nothing (the NULL poisons the conjunction) and FALSE for
    // B.b = 1 — no row qualifies.
    assert_rows(
        "SELECT * FROM B B0 WHERE B0.b NOT IN (SELECT S1.b FROM S S1 WHERE TRUE)",
        0,
    );
}

#[test]
fn not_in_passes_only_via_empty_range() {
    // Correlation `S1.a <= B0.a` empties the range exactly for
    // B0.a = NULL (UNKNOWN everywhere); NOT IN over the empty range is
    // vacuously TRUE. Every other row sees a NULL (UNKNOWN) or a match
    // (FALSE). Only (NULL, 2) survives.
    assert_rows(
        "SELECT * FROM B B0 WHERE B0.b NOT IN (SELECT S1.b FROM S S1 WHERE S1.a <= B0.a)",
        1,
    );
}

#[test]
fn all_over_empty_detail_set_is_vacuously_true() {
    // `S1.a > 100` filters S to nothing, so `>= ALL` holds for every B
    // row — including (NULL, 2): ALL over the empty set is TRUE before
    // the comparison is ever evaluated.
    assert_rows(
        "SELECT * FROM B B0 WHERE B0.a >= ALL (SELECT S1.a FROM S S1 WHERE S1.a > 100)",
        4,
    );
}

#[test]
fn all_with_null_left_operand_is_unknown_on_nonempty_range() {
    // Non-empty range {0,1,2}: B0.a >= ALL needs TRUE for every element.
    // a=3 passes; a=0,1 fail on some element; a=NULL compares UNKNOWN.
    assert_rows(
        "SELECT * FROM B B0 WHERE B0.a >= ALL (SELECT S1.a FROM S S1 WHERE TRUE)",
        1,
    );
}

#[test]
fn scalar_aggregate_over_empty_range_is_null() {
    // MIN over the emptied range is NULL, so the comparison is UNKNOWN
    // for every row: zero rows, not an error and not "everything".
    assert_rows(
        "SELECT * FROM B B0 WHERE B0.b > (SELECT MIN(S1.b) FROM S S1 WHERE S1.a > 100)",
        0,
    );
}

#[test]
fn count_over_empty_range_is_zero_not_null() {
    // COUNT is the exception: the same empty range compares as 0, so
    // `B0.b > COUNT(...)` holds wherever B0.b > 0 — all four rows.
    assert_rows(
        "SELECT * FROM B B0 WHERE B0.b > (SELECT COUNT(S1.b) FROM S S1 WHERE S1.a > 100)",
        4,
    );
}

#[test]
fn count_skips_nulls_but_count_star_does_not() {
    // COUNT(S1.b) over all of S sees {1, NULL, 5} and counts 2;
    // COUNT(*) counts 3 rows. B.b > 2: rows with b ∈ {4, 9};
    // B.b > 3: the same two rows — but pin both forms independently.
    assert_rows(
        "SELECT * FROM B B0 WHERE B0.b > (SELECT COUNT(S1.b) FROM S S1 WHERE TRUE)",
        2,
    );
    assert_rows(
        "SELECT * FROM B B0 WHERE B0.b > (SELECT COUNT(*) FROM S S1 WHERE TRUE)",
        2,
    );
}

#[test]
fn in_with_null_left_operand_is_unknown() {
    // B.a IN {0,1,2}: rows a=0 and a=1 pass, a=3 fails, a=NULL is
    // UNKNOWN (never TRUE) even though the range is non-empty.
    assert_rows(
        "SELECT * FROM B B0 WHERE B0.a IN (SELECT S1.a FROM S S1 WHERE TRUE)",
        2,
    );
}
