//! Multi-level non-neighboring correlation: a reference reaching *three*
//! blocks out. The push-down of Theorems 3.3/3.4 must cascade — the far
//! table is pushed one block per level, costing exactly n−1 = 2
//! supplementary joins — and every strategy must still agree (the
//! baselines fall back to tuple iteration).

use gmdj_algebra::ast::{exists, not_exists, NestedPredicate, QueryExpr};
use gmdj_core::exec::MemoryCatalog;
use gmdj_engine::strategy::{explain_gmdj, run_all_agree, Strategy};
use gmdj_relation::expr::{col, lit};
use gmdj_relation::relation::RelationBuilder;
use gmdj_relation::schema::DataType;

fn catalog() -> MemoryCatalog {
    let mk = |q: &str, rows: &[(i64, i64)]| {
        let mut b = RelationBuilder::new(q)
            .column("k", DataType::Int)
            .column("v", DataType::Int);
        for &(k, v) in rows {
            b = b.row(vec![k.into(), v.into()]);
        }
        b.build().unwrap()
    };
    MemoryCatalog::new()
        .with("A", mk("A", &[(1, 10), (2, 20), (3, 30)]))
        .with("B", mk("B", &[(1, 1), (2, 2), (3, 3), (4, 1)]))
        .with("C", mk("C", &[(1, 5), (2, 6), (3, 5)]))
        .with("D", mk("D", &[(10, 1), (20, 2), (30, 3), (20, 9)]))
}

/// σ[∃ σ[∃ σ[∃ σ[D.k = A.v ∧ D.v = C.k](D)](C-block θC)](B-block θB)](A):
/// the innermost D-block references A, three levels out.
fn three_level_query() -> QueryExpr {
    let d_block = QueryExpr::table("D", "D").select_flat(
        col("D.k")
            .eq(col("A.v")) // non-neighboring: 3 levels up
            .and(col("D.v").eq(col("C.k"))),
    );
    let c_block = QueryExpr::table("C", "C")
        .select(NestedPredicate::Atom(col("C.v").ge(col("B.v"))).and(exists(d_block)));
    let b_block = QueryExpr::table("B", "B")
        .select(NestedPredicate::Atom(col("B.k").ne(col("A.k"))).and(exists(c_block)));
    QueryExpr::table("A", "A").select(exists(b_block))
}

#[test]
fn three_level_pushdown_adds_two_joins() {
    let q = three_level_query();
    let plan = explain_gmdj(&q, &catalog(), false).unwrap();
    // n − 1 supplementary joins for a depth-3 non-neighboring reference
    // (one per intermediate block). Cross joins with `true` conditions.
    assert_eq!(plan.matches("Join").count(), 2, "{plan}");
    // Two pushed-down copies of A under fresh qualifiers.
    assert_eq!(plan.matches("Scan A → A__pd").count(), 2, "{plan}");
}

#[test]
fn three_level_all_strategies_agree() {
    let q = three_level_query();
    let results = run_all_agree(
        &q,
        &catalog(),
        &[
            Strategy::NaiveNestedLoop,
            Strategy::NativeSmart,
            Strategy::JoinUnnest,
            Strategy::GmdjBasic,
            Strategy::GmdjOptimized,
        ],
    )
    .unwrap();
    let n = results[0].1.relation.len();
    assert!(n > 0, "query should have a non-trivial answer");
}

#[test]
fn three_level_with_negations_agrees() {
    // Same shape under ∄ at two levels (exercises normalization +
    // push-down together).
    let d_block = QueryExpr::table("D", "D")
        .select_flat(col("D.k").eq(col("A.v")).and(col("D.v").eq(col("C.k"))));
    let c_block = QueryExpr::table("C", "C").select(not_exists(d_block));
    let b_block = QueryExpr::table("B", "B")
        .select(NestedPredicate::Atom(col("B.v").le(lit(3))).and(exists(c_block)));
    let q = QueryExpr::table("A", "A").select(not_exists(b_block));
    run_all_agree(
        &q,
        &catalog(),
        &[
            Strategy::NaiveNestedLoop,
            Strategy::NativeSmart,
            Strategy::GmdjBasic,
            Strategy::GmdjOptimized,
        ],
    )
    .unwrap();
}
