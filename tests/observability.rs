//! Observability acceptance tests.
//!
//! * The `gmdj.eval` span's counter deltas reconcile **exactly** with the
//!   rolled-up [`PlanNodeStats`] under every [`ExecPolicy`] — the profiler
//!   never shows numbers the runtime didn't count.
//! * Distributed runs report the closed-form network costs of Section 6
//!   (`broadcast_values = base_rows × sites`, `messages = 2 × sites` for a
//!   single-column base relation) and render them in EXPLAIN ANALYZE.
//! * The Runtime feeds the process-wide metrics registry.
//! * `repro --profile-json` output parses and validates against the
//!   checked-in schema, and the plan trees survive a JSON round-trip.
//! * Query progress reconciles exactly: `morsels_done == morsels_total`
//!   at completion under Sequential, Parallel and Distributed, matched
//!   against the `gmdj.partition` / `gmdj.worker` / `site.roundtrip`
//!   span stream.
//! * The flight recorder retains an exact suffix of what a
//!   [`CollectingSink`] sees for the same run — lossless below capacity,
//!   overwrite-counted above it.

use std::sync::Arc;

use gmdj_bench::{profile, run_figure_with, FigureId};
use gmdj_core::metrics;
use gmdj_core::progress::ProgressRegistry;
use gmdj_core::runtime::{ExecMode, ExecPolicy, PlanNodeStats, Runtime};
use gmdj_core::spec::{AggBlock, GmdjSpec};
use gmdj_core::trace::{CollectingSink, FlightRecorder, TeeSink, TraceEvent, TraceSink};
use gmdj_relation::agg::NamedAgg;
use gmdj_relation::expr::col;
use gmdj_relation::relation::{Relation, RelationBuilder};
use gmdj_relation::schema::DataType;

/// Single-column base relation so network values == network rows.
fn base() -> Relation {
    let mut b = RelationBuilder::new("B").column("Lo", DataType::Int);
    for lo in [0, 25, 50, 75, 100] {
        b = b.row(vec![lo.into()]);
    }
    b.build().unwrap()
}

fn detail() -> Relation {
    let mut d = RelationBuilder::new("F")
        .column("T", DataType::Int)
        .column("V", DataType::Int);
    for t in 0..40 {
        d = d.row(vec![(t * 3).into(), (t % 7).into()]);
    }
    d.build().unwrap()
}

fn spec() -> GmdjSpec {
    GmdjSpec::new(vec![AggBlock::new(
        col("F.T").ge(col("B.Lo")),
        vec![NamedAgg::sum(col("F.V"), "s")],
    )])
}

#[test]
fn gmdj_eval_span_reconciles_exactly_with_node_counters() {
    for policy in [
        ExecPolicy::sequential(),
        ExecPolicy::parallel(3),
        ExecPolicy::parallel(2).with_partition_rows(Some(2)),
        ExecPolicy::distributed(2),
    ] {
        let sink = Arc::new(CollectingSink::new());
        let mut node = PlanNodeStats::new("GMDJ");
        let out = Runtime::with_sink(policy, sink.clone())
            .eval_gmdj(&base(), &detail(), &spec(), &mut node)
            .unwrap();
        assert_eq!(out.len(), base().len(), "{policy:?}");

        let evals = sink.by_name("gmdj.eval");
        assert_eq!(evals.len(), 1, "{policy:?}");
        let ev = &evals[0];
        for (key, want) in node
            .eval
            .trace_fields()
            .into_iter()
            .chain(node.network.trace_fields())
        {
            assert_eq!(
                ev.field(key),
                Some(want),
                "field `{key}` diverged under {policy:?}"
            );
        }
        assert!(ev.dur_ns > 0, "{policy:?}");
        assert_eq!(node.invocations, 1);
        assert!(node.elapsed_ns >= ev.dur_ns, "{policy:?}");

        // Partition spans cover the whole base exactly once.
        assert_eq!(
            sink.sum_field("gmdj.partition", "base_rows"),
            node.eval.base_rows,
            "{policy:?}"
        );
        assert_eq!(
            sink.by_name("gmdj.partition").len() as u64,
            node.eval.partitions,
            "{policy:?}"
        );
    }
}

#[test]
fn distributed_network_accounting_matches_closed_form() {
    let base_rows = base().len() as u64;
    for sites in [2usize, 3, 5] {
        let sink = Arc::new(CollectingSink::new());
        let mut node = PlanNodeStats::new("GMDJ");
        Runtime::with_sink(ExecPolicy::distributed(sites), sink.clone())
            .eval_gmdj(&base(), &detail(), &spec(), &mut node)
            .unwrap();

        // One broadcast wave (the base fits one partition) + one collect
        // wave: values = base_rows × sites (1-column base), 2 messages
        // per site.
        assert_eq!(node.network.broadcast_values, base_rows * sites as u64);
        assert_eq!(node.network.messages, 2 * sites as u64);
        assert_eq!(
            node.network.collected_states,
            base_rows * sites as u64,
            "one aggregate state per base row per site"
        );

        // Per-site round-trip spans carry the same totals.
        assert_eq!(sink.by_name("site.roundtrip").len(), sites);
        assert_eq!(
            sink.sum_field("site.roundtrip", "messages"),
            2 * sites as u64
        );
        assert_eq!(
            sink.sum_field("site.roundtrip", "broadcast_values"),
            base_rows * sites as u64
        );

        // EXPLAIN ANALYZE renders the network column.
        let text = node.render_analyze();
        assert!(text.contains("net="), "{text}");
        assert!(text.contains(&format!("msgs={}", 2 * sites)), "{text}");
    }
}

#[test]
fn runtime_reports_into_the_global_metrics_registry() {
    let m = metrics::global();
    let evals_before = m.counter("gmdj_evals_total");
    let scanned_before = m.counter("gmdj_detail_scanned_total");

    let mut node = PlanNodeStats::new("GMDJ");
    Runtime::sequential()
        .eval_gmdj(&base(), &detail(), &spec(), &mut node)
        .unwrap();

    // Other tests in this binary may run concurrently, so assert growth
    // by at least this evaluation's contribution, not exact equality.
    assert!(m.counter("gmdj_evals_total") > evals_before);
    assert!(m.counter("gmdj_detail_scanned_total") >= scanned_before + node.eval.detail_scanned);
    let prom = m.render_prometheus();
    assert!(prom.contains("gmdj_evals_total"), "{prom}");
    assert!(
        prom.contains("# TYPE gmdj_eval_latency_us histogram"),
        "{prom}"
    );
}

#[test]
fn progress_reconciles_with_the_span_stream_under_every_mode() {
    let registry: &'static ProgressRegistry = Box::leak(Box::new(ProgressRegistry::new()));
    let policies = [
        ExecPolicy::sequential(),
        ExecPolicy::sequential().with_partition_rows(Some(2)),
        ExecPolicy::parallel(3).with_morsel_size(Some(8)),
        ExecPolicy::parallel(2)
            .with_partition_rows(Some(2))
            .with_morsel_size(Some(16)),
        ExecPolicy::distributed(2),
        ExecPolicy::distributed(3).with_partition_rows(Some(3)),
    ];
    for policy in policies {
        let sink = Arc::new(CollectingSink::new());
        let ticket = registry.register("MD(B, F, sum)", "runtime", policy.label());
        let progress = ticket.progress();
        let mut node = PlanNodeStats::new("GMDJ");
        Runtime::with_sink(policy, sink.clone())
            .with_progress(progress.clone())
            .eval_gmdj(&base(), &detail(), &spec(), &mut node)
            .unwrap();

        // End state: the announced closed-form schedule was met exactly
        // and the row ticks equal the evaluator's own scan counter.
        let snap = progress.snapshot();
        assert!(snap.morsels_total > 0, "{policy:?}");
        assert_eq!(snap.morsels_done, snap.morsels_total, "{policy:?}");
        assert_eq!(snap.rows_done, node.eval.detail_scanned, "{policy:?}");

        // The ticks reconcile with the mode's span stream: partitions
        // (Sequential), pulled morsels summed over `gmdj.worker` spans
        // (Parallel), site round-trips (Distributed).
        let spans = match policy.mode {
            ExecMode::Sequential => sink.by_name("gmdj.partition").len() as u64,
            ExecMode::Parallel { .. } => sink.sum_field("gmdj.worker", "morsels"),
            ExecMode::Distributed { .. } => sink.by_name("site.roundtrip").len() as u64,
        };
        assert_eq!(snap.morsels_done, spans, "{policy:?}");
    }
    // Every ticket dropped: nothing left active, finals folded in.
    let (active, totals) = registry.snapshot();
    assert!(active.is_empty());
    assert_eq!(totals.queries_started, policies.len() as u64);
    assert_eq!(totals.queries_finished, policies.len() as u64);
    assert_eq!(totals.morsels_done, totals.morsels_total);
}

#[test]
fn flight_recorder_retains_exact_suffix_of_the_span_stream() {
    // Single-threaded policy: the tee feeds both sinks in one record
    // call, so the ring's order matches the collecting sink's exactly.
    let policy = ExecPolicy::sequential().with_partition_rows(Some(1));
    let run = |flight: Arc<FlightRecorder>| -> (Vec<TraceEvent>, Vec<TraceEvent>, u64) {
        let collecting = Arc::new(CollectingSink::new());
        let tee: Arc<dyn TraceSink> = Arc::new(TeeSink::new(collecting.clone(), flight.clone()));
        let mut node = PlanNodeStats::new("GMDJ");
        Runtime::with_sink(policy, tee)
            .eval_gmdj(&base(), &detail(), &spec(), &mut node)
            .unwrap();
        let (retained, dropped) = flight.snapshot();
        (collecting.events(), retained, dropped)
    };

    // Below capacity: lossless — the ring holds the entire stream.
    let (all, retained, dropped) = run(Arc::new(FlightRecorder::with_capacity(4096)));
    assert!(all.len() > 4, "the partition-per-row run emits many spans");
    assert_eq!(dropped, 0);
    assert_eq!(retained, all);

    // Above capacity: exactly the stream's suffix survives, and the
    // overwrite counter accounts for every event that fell off.
    let (all, retained, dropped) = run(Arc::new(FlightRecorder::with_capacity(4)));
    assert_eq!(retained.len(), 4);
    assert_eq!(dropped as usize, all.len() - 4);
    assert_eq!(retained.as_slice(), &all[all.len() - 4..]);
}

#[test]
fn profile_json_validates_and_round_trips_plan_trees() {
    let policy = ExecPolicy::parallel(2);
    let fig = run_figure_with(FigureId::Fig2, 0.002, 7, policy).unwrap();
    let doc = profile::render_profile(&[fig], &policy, 0.002, 7);

    let parsed = profile::parse_json(&doc).expect("profile emits valid JSON");
    profile::validate_profile(&parsed).expect("profile matches its schema");

    // Every GMDJ measurement carries a plan tree that reconstructs
    // losslessly from the JSON.
    let mut trees = 0;
    let figures = parsed.get("figures").unwrap().as_arr().unwrap();
    for fig in figures {
        for point in fig.get("points").unwrap().as_arr().unwrap() {
            for m in point.get("measurements").unwrap().as_arr().unwrap() {
                let strategy = m.get("strategy").unwrap().as_str().unwrap();
                let plan = m.get("plan").unwrap();
                if strategy.starts_with("gmdj") {
                    let tree =
                        profile::plan_from_json(plan).unwrap_or_else(|e| panic!("{strategy}: {e}"));
                    assert!(tree.elapsed_ns > 0, "{strategy}");
                    assert_eq!(
                        profile::parse_json(&tree.to_json()).unwrap(),
                        *plan,
                        "round-trip must be lossless"
                    );
                    trees += 1;
                }
            }
        }
    }
    assert!(trees > 0, "Figure 2 runs GMDJ strategies");
}
