//! Observability acceptance tests.
//!
//! * The `gmdj.eval` span's counter deltas reconcile **exactly** with the
//!   rolled-up [`PlanNodeStats`] under every [`ExecPolicy`] — the profiler
//!   never shows numbers the runtime didn't count.
//! * Distributed runs report the closed-form network costs of Section 6
//!   (`broadcast_values = base_rows × sites`, `messages = 2 × sites` for a
//!   single-column base relation) and render them in EXPLAIN ANALYZE.
//! * The Runtime feeds the process-wide metrics registry.
//! * `repro --profile-json` output parses and validates against the
//!   checked-in schema, and the plan trees survive a JSON round-trip.
//! * Query progress reconciles exactly: `morsels_done == morsels_total`
//!   at completion under Sequential, Parallel and Distributed, matched
//!   against the `gmdj.partition` / `gmdj.worker` / `site.roundtrip`
//!   span stream.
//! * The flight recorder retains an exact suffix of what a
//!   [`CollectingSink`] sees for the same run — lossless below capacity,
//!   overwrite-counted above it.

use std::sync::Arc;

use gmdj_bench::{profile, run_figure_with, FigureId};
use gmdj_core::metrics;
use gmdj_core::progress::ProgressRegistry;
use gmdj_core::runtime::{ExecMode, ExecPolicy, PlanNodeStats, Runtime};
use gmdj_core::spec::{AggBlock, GmdjSpec};
use gmdj_core::trace::{CollectingSink, FlightRecorder, TeeSink, TraceEvent, TraceSink};
use gmdj_relation::agg::NamedAgg;
use gmdj_relation::expr::col;
use gmdj_relation::relation::{Relation, RelationBuilder};
use gmdj_relation::schema::DataType;

/// Single-column base relation so network values == network rows.
fn base() -> Relation {
    let mut b = RelationBuilder::new("B").column("Lo", DataType::Int);
    for lo in [0, 25, 50, 75, 100] {
        b = b.row(vec![lo.into()]);
    }
    b.build().unwrap()
}

fn detail() -> Relation {
    let mut d = RelationBuilder::new("F")
        .column("T", DataType::Int)
        .column("V", DataType::Int);
    for t in 0..40 {
        d = d.row(vec![(t * 3).into(), (t % 7).into()]);
    }
    d.build().unwrap()
}

fn spec() -> GmdjSpec {
    GmdjSpec::new(vec![AggBlock::new(
        col("F.T").ge(col("B.Lo")),
        vec![NamedAgg::sum(col("F.V"), "s")],
    )])
}

#[test]
fn gmdj_eval_span_reconciles_exactly_with_node_counters() {
    for policy in [
        ExecPolicy::sequential(),
        ExecPolicy::parallel(3),
        ExecPolicy::parallel(2).with_partition_rows(Some(2)),
        ExecPolicy::distributed(2),
    ] {
        let sink = Arc::new(CollectingSink::new());
        let mut node = PlanNodeStats::new("GMDJ");
        let out = Runtime::with_sink(policy, sink.clone())
            .eval_gmdj(&base(), &detail(), &spec(), &mut node)
            .unwrap();
        assert_eq!(out.len(), base().len(), "{policy:?}");

        let evals = sink.by_name("gmdj.eval");
        assert_eq!(evals.len(), 1, "{policy:?}");
        let ev = &evals[0];
        for (key, want) in node
            .eval
            .trace_fields()
            .into_iter()
            .chain(node.network.trace_fields())
        {
            assert_eq!(
                ev.field(key),
                Some(want),
                "field `{key}` diverged under {policy:?}"
            );
        }
        assert!(ev.dur_ns > 0, "{policy:?}");
        assert_eq!(node.invocations, 1);
        assert!(node.elapsed_ns >= ev.dur_ns, "{policy:?}");

        // Partition spans cover the whole base exactly once.
        assert_eq!(
            sink.sum_field("gmdj.partition", "base_rows"),
            node.eval.base_rows,
            "{policy:?}"
        );
        assert_eq!(
            sink.by_name("gmdj.partition").len() as u64,
            node.eval.partitions,
            "{policy:?}"
        );
    }
}

#[test]
fn distributed_network_accounting_matches_closed_form() {
    let base_rows = base().len() as u64;
    for sites in [2usize, 3, 5] {
        let sink = Arc::new(CollectingSink::new());
        let mut node = PlanNodeStats::new("GMDJ");
        Runtime::with_sink(ExecPolicy::distributed(sites), sink.clone())
            .eval_gmdj(&base(), &detail(), &spec(), &mut node)
            .unwrap();

        // One broadcast wave (the base fits one partition) + one collect
        // wave: values = base_rows × sites (1-column base), 2 messages
        // per site.
        assert_eq!(node.network.broadcast_values, base_rows * sites as u64);
        assert_eq!(node.network.messages, 2 * sites as u64);
        assert_eq!(
            node.network.collected_states,
            base_rows * sites as u64,
            "one aggregate state per base row per site"
        );

        // Per-site round-trip spans carry the same totals.
        assert_eq!(sink.by_name("site.roundtrip").len(), sites);
        assert_eq!(
            sink.sum_field("site.roundtrip", "messages"),
            2 * sites as u64
        );
        assert_eq!(
            sink.sum_field("site.roundtrip", "broadcast_values"),
            base_rows * sites as u64
        );

        // EXPLAIN ANALYZE renders the network column.
        let text = node.render_analyze();
        assert!(text.contains("net="), "{text}");
        assert!(text.contains(&format!("msgs={}", 2 * sites)), "{text}");
    }
}

/// The cross-process trace contract, both transports: the span deltas a
/// site ships back reconcile **exactly** with what the coordinator rolls
/// up — same counters on the stitched `site.eval` spans, on the
/// `site.roundtrip` deltas, in the per-site breakdown, and in the node
/// totals. No transport-dependent drift, no double counting.
#[test]
fn shipped_site_spans_reconcile_exactly_with_coordinator_rollups() {
    let eval_keys = [
        "detail_scanned",
        "probe_candidates",
        "theta_evals",
        "agg_updates",
        "dead_early",
        "done_early",
        "index_builds",
        "completion_fallbacks",
    ];
    for policy in [
        ExecPolicy::distributed(2),
        ExecPolicy::distributed(3).with_partition_rows(Some(2)),
        ExecPolicy::distributed(2).with_real_sites(true),
        ExecPolicy::distributed(3)
            .with_partition_rows(Some(2))
            .with_real_sites(true),
    ] {
        let sites = match policy.mode {
            ExecMode::Distributed { sites } => sites,
            _ => unreachable!(),
        };
        let sink = Arc::new(CollectingSink::new());
        let mut node = PlanNodeStats::new("GMDJ");
        Runtime::with_sink(policy, sink.clone())
            .eval_gmdj(&base(), &detail(), &spec(), &mut node)
            .unwrap();

        // Exactly one stitched site.eval per coordinator round-trip.
        let evals = sink.by_name("site.eval");
        let roundtrips = sink.by_name("site.roundtrip");
        assert_eq!(evals.len(), roundtrips.len(), "{policy:?}");
        assert!(!evals.is_empty(), "{policy:?}");

        // One query id spans the whole evaluation; every stitched span
        // names a distinct round-trip parent.
        let qid = evals[0].field("query_id").unwrap();
        let mut parents: Vec<u64> = evals
            .iter()
            .map(|e| {
                assert_eq!(e.field("query_id"), Some(qid), "{policy:?}");
                e.field("parent_span").unwrap()
            })
            .collect();
        parents.sort_unstable();
        parents.dedup();
        assert_eq!(parents.len(), evals.len(), "{policy:?}: duplicated stitch");

        // Shipped deltas == coordinator-merged deltas == node totals,
        // key by key. (partitions / base_rows / chunk reads are
        // coordinator-side closed forms; sites never count them.)
        for key in eval_keys {
            let shipped = sink.sum_field("site.eval", key);
            let merged = sink.sum_field("site.roundtrip", key);
            assert_eq!(shipped, merged, "{policy:?}: `{key}` drifted in transit");
            assert_eq!(
                merged,
                node.eval
                    .trace_fields()
                    .iter()
                    .find(|(k, _)| *k == key)
                    .unwrap()
                    .1,
                "{policy:?}: `{key}` rollup diverged"
            );
        }
        for (key, want) in node.network.trace_fields() {
            assert_eq!(
                sink.sum_field("site.roundtrip", key),
                want,
                "{policy:?}: network `{key}` diverged"
            );
        }

        // The per-site breakdown agrees with all of the above.
        assert_eq!(node.sites.len(), sites, "{policy:?}");
        let rt_total: u64 = node.sites.iter().map(|s| s.roundtrips).sum();
        assert_eq!(rt_total as usize, roundtrips.len(), "{policy:?}");
        let scanned: u64 = node.sites.iter().map(|s| s.rows_scanned).sum();
        assert_eq!(scanned, node.eval.detail_scanned, "{policy:?}");
        let sent: u64 = node.sites.iter().map(|s| s.bytes_sent).sum();
        let recv: u64 = node.sites.iter().map(|s| s.bytes_received).sum();
        assert_eq!(sent, node.network.bytes_sent, "{policy:?}");
        assert_eq!(recv, node.network.bytes_received, "{policy:?}");
        let wall: u64 = node.sites.iter().map(|s| s.site_wall_ns).sum();
        assert_eq!(
            wall,
            sink.sum_field("site.roundtrip", "wall_ns"),
            "{policy:?}"
        );
        assert_eq!(
            wall,
            evals.iter().map(|e| e.dur_ns).sum::<u64>(),
            "{policy:?}: shipped site.eval durations are the site wall-clock"
        );
        for s in &node.sites {
            assert_eq!(s.attempts, s.roundtrips, "{policy:?}: clean run retried");
            assert!(s.roundtrip_ns >= s.site_wall_ns + s.wire_ns(), "{policy:?}");
        }
        // The socket transport measures real bytes; in-process ships none.
        if policy.real_sites {
            assert!(sent > 0 && recv > 0, "{policy:?}");
        } else {
            assert_eq!(sent, 0, "{policy:?}");
            assert_eq!(recv, 0, "{policy:?}");
        }

        // EXPLAIN ANALYZE renders one breakdown line per site.
        let text = node.render_analyze();
        for s in &node.sites {
            assert!(text.contains(&s.label), "{policy:?}: {text}");
        }
        assert!(text.contains("rt="), "{text}");
        assert!(text.contains("wire="), "{text}");
        assert!(text.contains("merge="), "{text}");
    }
}

/// Same reconciliation one layer up: every GMDJ strategy the engine can
/// route through the distributed runtime reports a per-site breakdown in
/// its plan stats whose totals match the rolled-up counters — over real
/// sockets and in-process alike.
#[test]
fn every_strategy_reports_a_reconciled_site_breakdown() {
    use gmdj_algebra::ast::{NestedPredicate, QueryExpr, SubqueryPred};
    use gmdj_core::exec::MemoryCatalog;
    use gmdj_engine::strategy::{run_with_policy, Strategy};
    use gmdj_relation::expr::col;
    use gmdj_relation::schema::Schema;
    use gmdj_relation::value::Value;

    fn collect_site_nodes(root: &PlanNodeStats) -> Vec<&PlanNodeStats> {
        let mut out = Vec::new();
        let mut stack = vec![root];
        while let Some(n) = stack.pop() {
            if !n.sites.is_empty() {
                out.push(n);
            }
            stack.extend(n.children.iter());
        }
        out
    }

    let b_schema = Schema::qualified("B", &[("a", DataType::Int), ("b", DataType::Int)]);
    let b_rows = (0..10)
        .map(|i| vec![Value::Int(i % 4), Value::Int(i % 3)].into_boxed_slice())
        .collect();
    let r_schema = Schema::qualified("R", &[("a", DataType::Int), ("b", DataType::Int)]);
    let r_rows = (0..30)
        .map(|i| vec![Value::Int(i % 6), Value::Int(i % 5)].into_boxed_slice())
        .collect();
    let catalog = MemoryCatalog::new()
        .with("B", Relation::from_parts(b_schema, b_rows))
        .with("R", Relation::from_parts(r_schema, r_rows));
    let query =
        QueryExpr::table("B", "B").select(NestedPredicate::Subquery(SubqueryPred::Exists {
            query: Box::new(QueryExpr::table("R", "R1").select_flat(col("R1.a").eq(col("B.a")))),
            negated: false,
        }));

    let strategies = [
        Strategy::GmdjBasic,
        Strategy::GmdjOptimized,
        Strategy::GmdjBasicNoProbeIndex,
        Strategy::GmdjOptimizedNoProbeIndex,
        Strategy::GmdjCostBased,
    ];
    for real in [false, true] {
        let policy = ExecPolicy::distributed(2).with_real_sites(real);
        for strat in strategies {
            let run = run_with_policy(&query, &catalog, strat, policy)
                .unwrap_or_else(|e| panic!("{strat:?} (real={real}): {e}"));
            let stats = run
                .plan_stats
                .as_ref()
                .expect("gmdj strategies record plan stats");
            let nodes = collect_site_nodes(stats);
            assert!(
                !nodes.is_empty(),
                "{strat:?} (real={real}): no node carries a site breakdown"
            );
            for node in nodes {
                assert_eq!(node.sites.len(), 2, "{strat:?}");
                let scanned: u64 = node.sites.iter().map(|s| s.rows_scanned).sum();
                assert_eq!(scanned, node.eval.detail_scanned, "{strat:?} (real={real})");
                let sent: u64 = node.sites.iter().map(|s| s.bytes_sent).sum();
                let recv: u64 = node.sites.iter().map(|s| s.bytes_received).sum();
                assert_eq!(sent, node.network.bytes_sent, "{strat:?} (real={real})");
                assert_eq!(recv, node.network.bytes_received, "{strat:?} (real={real})");
                if real {
                    assert!(sent > 0 && recv > 0, "{strat:?}");
                }
                let frag: u64 = node.sites.iter().map(|s| s.fragment_rows).sum();
                assert_eq!(frag, 30, "{strat:?}: fragments must cover the detail");
                let text = node.render_analyze();
                assert!(text.contains("rt=") && text.contains("wire="), "{text}");
            }
        }
    }
}

#[test]
fn runtime_reports_into_the_global_metrics_registry() {
    let m = metrics::global();
    let evals_before = m.counter("gmdj_evals_total");
    let scanned_before = m.counter("gmdj_detail_scanned_total");

    let mut node = PlanNodeStats::new("GMDJ");
    Runtime::sequential()
        .eval_gmdj(&base(), &detail(), &spec(), &mut node)
        .unwrap();

    // Other tests in this binary may run concurrently, so assert growth
    // by at least this evaluation's contribution, not exact equality.
    assert!(m.counter("gmdj_evals_total") > evals_before);
    assert!(m.counter("gmdj_detail_scanned_total") >= scanned_before + node.eval.detail_scanned);
    let prom = m.render_prometheus();
    assert!(prom.contains("gmdj_evals_total"), "{prom}");
    assert!(
        prom.contains("# TYPE gmdj_eval_latency_us histogram"),
        "{prom}"
    );
}

#[test]
fn progress_reconciles_with_the_span_stream_under_every_mode() {
    let registry: &'static ProgressRegistry = Box::leak(Box::new(ProgressRegistry::new()));
    let policies = [
        ExecPolicy::sequential(),
        ExecPolicy::sequential().with_partition_rows(Some(2)),
        ExecPolicy::parallel(3).with_morsel_size(Some(8)),
        ExecPolicy::parallel(2)
            .with_partition_rows(Some(2))
            .with_morsel_size(Some(16)),
        ExecPolicy::distributed(2),
        ExecPolicy::distributed(3).with_partition_rows(Some(3)),
    ];
    for policy in policies {
        let sink = Arc::new(CollectingSink::new());
        let ticket = registry.register("MD(B, F, sum)", "runtime", policy.label());
        let progress = ticket.progress();
        let mut node = PlanNodeStats::new("GMDJ");
        Runtime::with_sink(policy, sink.clone())
            .with_progress(progress.clone())
            .eval_gmdj(&base(), &detail(), &spec(), &mut node)
            .unwrap();

        // End state: the announced closed-form schedule was met exactly
        // and the row ticks equal the evaluator's own scan counter.
        let snap = progress.snapshot();
        assert!(snap.morsels_total > 0, "{policy:?}");
        assert_eq!(snap.morsels_done, snap.morsels_total, "{policy:?}");
        assert_eq!(snap.rows_done, node.eval.detail_scanned, "{policy:?}");

        // The ticks reconcile with the mode's span stream: partitions
        // (Sequential), pulled morsels summed over `gmdj.worker` spans
        // (Parallel), site round-trips (Distributed).
        let spans = match policy.mode {
            ExecMode::Sequential => sink.by_name("gmdj.partition").len() as u64,
            ExecMode::Parallel { .. } => sink.sum_field("gmdj.worker", "morsels"),
            ExecMode::Distributed { .. } => sink.by_name("site.roundtrip").len() as u64,
        };
        assert_eq!(snap.morsels_done, spans, "{policy:?}");
    }
    // Every ticket dropped: nothing left active, finals folded in.
    let (active, totals) = registry.snapshot();
    assert!(active.is_empty());
    assert_eq!(totals.queries_started, policies.len() as u64);
    assert_eq!(totals.queries_finished, policies.len() as u64);
    assert_eq!(totals.morsels_done, totals.morsels_total);
}

#[test]
fn flight_recorder_retains_exact_suffix_of_the_span_stream() {
    // Single-threaded policy: the tee feeds both sinks in one record
    // call, so the ring's order matches the collecting sink's exactly.
    let policy = ExecPolicy::sequential().with_partition_rows(Some(1));
    let run = |flight: Arc<FlightRecorder>| -> (Vec<TraceEvent>, Vec<TraceEvent>, u64) {
        let collecting = Arc::new(CollectingSink::new());
        let tee: Arc<dyn TraceSink> = Arc::new(TeeSink::new(collecting.clone(), flight.clone()));
        let mut node = PlanNodeStats::new("GMDJ");
        Runtime::with_sink(policy, tee)
            .eval_gmdj(&base(), &detail(), &spec(), &mut node)
            .unwrap();
        let (retained, dropped) = flight.snapshot();
        (collecting.events(), retained, dropped)
    };

    // Below capacity: lossless — the ring holds the entire stream.
    let (all, retained, dropped) = run(Arc::new(FlightRecorder::with_capacity(4096)));
    assert!(all.len() > 4, "the partition-per-row run emits many spans");
    assert_eq!(dropped, 0);
    assert_eq!(retained, all);

    // Above capacity: exactly the stream's suffix survives, and the
    // overwrite counter accounts for every event that fell off.
    let (all, retained, dropped) = run(Arc::new(FlightRecorder::with_capacity(4)));
    assert_eq!(retained.len(), 4);
    assert_eq!(dropped as usize, all.len() - 4);
    assert_eq!(retained.as_slice(), &all[all.len() - 4..]);
}

/// Measurement harness for EXPERIMENTS.md § "Span-shipping overhead":
/// the same distributed real-sites evaluation with span shipping on
/// (live `CollectingSink`, `trace=true` on the wire) vs off
/// (`NullSink`, sites ship counters and wall-clock only). Ignored by
/// default — run with
/// `cargo test --release --test observability overhead -- --ignored --nocapture`.
#[test]
#[ignore]
fn measure_span_shipping_overhead() {
    use gmdj_core::trace::NullSink;
    use std::time::Instant;

    let mut b = RelationBuilder::new("B").column("Lo", DataType::Int);
    for lo in 0..200 {
        b = b.row(vec![(lo * 40).into()]);
    }
    let base = b.build().unwrap();
    let mut d = RelationBuilder::new("F")
        .column("T", DataType::Int)
        .column("V", DataType::Int);
    for t in 0..20_000 {
        d = d.row(vec![(t % 8000).into(), (t % 13).into()]);
    }
    let detail = d.build().unwrap();
    let policy = ExecPolicy::distributed(4).with_real_sites(true);

    let run = |traced: bool| -> u64 {
        let mut node = PlanNodeStats::new("GMDJ");
        let rt = if traced {
            Runtime::with_sink(policy, Arc::new(CollectingSink::new()))
        } else {
            Runtime::with_sink(policy, Arc::new(NullSink))
        };
        let start = Instant::now();
        rt.eval_gmdj(&base, &detail, &spec(), &mut node).unwrap();
        start.elapsed().as_nanos() as u64
    };

    // Warm-up, then interleave the arms so drift hits both equally.
    for _ in 0..3 {
        run(true);
        run(false);
    }
    const N: usize = 40;
    let mut on = Vec::with_capacity(N);
    let mut off = Vec::with_capacity(N);
    for _ in 0..N {
        on.push(run(true));
        off.push(run(false));
    }
    on.sort_unstable();
    off.sort_unstable();
    // Trimmed mean over the middle half, like the bench harness.
    let trimmed = |v: &[u64]| -> f64 {
        let q = v.len() / 4;
        let mid = &v[q..v.len() - q];
        mid.iter().sum::<u64>() as f64 / mid.len() as f64
    };
    let (t_on, t_off) = (trimmed(&on), trimmed(&off));
    println!(
        "span shipping on:  {:.3} ms (median {:.3} ms)\n\
         span shipping off: {:.3} ms (median {:.3} ms)\n\
         ratio on/off: {:.3}",
        t_on / 1e6,
        on[N / 2] as f64 / 1e6,
        t_off / 1e6,
        off[N / 2] as f64 / 1e6,
        t_on / t_off,
    );
}

#[test]
fn profile_json_validates_and_round_trips_plan_trees() {
    let policy = ExecPolicy::parallel(2);
    let fig = run_figure_with(FigureId::Fig2, 0.002, 7, policy).unwrap();
    let doc = profile::render_profile(&[fig], &policy, 0.002, 7);

    let parsed = profile::parse_json(&doc).expect("profile emits valid JSON");
    profile::validate_profile(&parsed).expect("profile matches its schema");

    // Every GMDJ measurement carries a plan tree that reconstructs
    // losslessly from the JSON.
    let mut trees = 0;
    let figures = parsed.get("figures").unwrap().as_arr().unwrap();
    for fig in figures {
        for point in fig.get("points").unwrap().as_arr().unwrap() {
            for m in point.get("measurements").unwrap().as_arr().unwrap() {
                let strategy = m.get("strategy").unwrap().as_str().unwrap();
                let plan = m.get("plan").unwrap();
                if strategy.starts_with("gmdj") {
                    let tree =
                        profile::plan_from_json(plan).unwrap_or_else(|e| panic!("{strategy}: {e}"));
                    assert!(tree.elapsed_ns > 0, "{strategy}");
                    assert_eq!(
                        profile::parse_json(&tree.to_json()).unwrap(),
                        *plan,
                        "round-trip must be lossless"
                    );
                    trees += 1;
                }
            }
        }
    }
    assert!(trees > 0, "Figure 2 runs GMDJ strategies");
}
