//! HTTP stats-endpoint integration test: a [`StatsServer`] on an
//! ephemeral port, probed over a plain [`std::net::TcpStream`] while
//! GMDJ queries run concurrently through the engine — no HTTP client
//! dependency, the responder is simple enough to speak to by hand.
//!
//! * `GET /metrics` parses as Prometheus text exposition (every line a
//!   `# HELP`/`# TYPE` comment or `name value`).
//! * `GET /queries` parses as JSON and validates against
//!   `schemas/queries.schema.json` (via `profile::validate_queries`),
//!   including the `morsels_done ≤ morsels_total` invariant on entries
//!   snapshotted mid-flight.
//! * `GET /flight` is a well-formed flight-recorder dump.
//! * `GET /healthz` answers 200.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use gmdj_algebra::ast::{exists, QueryExpr};
use gmdj_bench::profile;
use gmdj_core::exec::MemoryCatalog;
use gmdj_core::runtime::ExecPolicy;
use gmdj_core::serve::StatsServer;
use gmdj_engine::strategy::{run_with_policy, Strategy};
use gmdj_relation::expr::col;
use gmdj_relation::relation::RelationBuilder;
use gmdj_relation::schema::DataType;

fn catalog() -> MemoryCatalog {
    let mut customers = RelationBuilder::new("C").column("id", DataType::Int);
    for id in 0..200 {
        customers = customers.row(vec![id.into()]);
    }
    let mut orders = RelationBuilder::new("O")
        .column("cust", DataType::Int)
        .column("total", DataType::Int);
    for i in 0..2000 {
        orders = orders.row(vec![(i % 200).into(), (i % 97).into()]);
    }
    MemoryCatalog::new()
        .with("Customers", customers.build().unwrap())
        .with("Orders", orders.build().unwrap())
}

fn query() -> QueryExpr {
    let sub = QueryExpr::table("Orders", "O").select_flat(col("O.cust").eq(col("C.id")));
    QueryExpr::table("Customers", "C").select(exists(sub))
}

/// Minimal HTTP GET over a raw socket; returns (status line, body).
fn get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to stats endpoint");
    stream
        .write_all(format!("GET {path} HTTP/1.0\r\nHost: test\r\n\r\n").as_bytes())
        .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("response carries a head/body split");
    let status = head.lines().next().unwrap_or("").to_string();
    (status, body.to_string())
}

/// Prometheus text-exposition check: every non-empty line is a comment
/// or `name[{labels}] value` with a parseable numeric value.
fn assert_prometheus(body: &str) {
    for line in body.lines().filter(|l| !l.trim().is_empty()) {
        if line.starts_with("# HELP ") || line.starts_with("# TYPE ") {
            continue;
        }
        let (name, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("unparseable metrics line: {line}"));
        assert!(!name.is_empty(), "{line}");
        assert!(value.parse::<f64>().is_ok(), "non-numeric value: {line}");
    }
}

#[test]
fn endpoint_serves_valid_documents_while_queries_run() {
    let server = StatsServer::start("127.0.0.1:0").expect("bind ephemeral port");
    let addr = server.local_addr();

    // One completed query up front so the metric families exist before
    // the first probe (the background worker races the probes).
    run_with_policy(
        &query(),
        &catalog(),
        Strategy::GmdjOptimized,
        ExecPolicy::sequential(),
    )
    .expect("warm-up query succeeds");

    // Keep the engine busy in the background so the probes observe a
    // live system (and, with luck, queries mid-flight).
    let stop = Arc::new(AtomicBool::new(false));
    let worker_stop = stop.clone();
    let worker = std::thread::spawn(move || {
        let catalog = catalog();
        let q = query();
        let mut runs = 0u32;
        while !worker_stop.load(Ordering::Relaxed) {
            run_with_policy(
                &q,
                &catalog,
                Strategy::GmdjOptimized,
                ExecPolicy::parallel(2),
            )
            .expect("background query succeeds");
            runs += 1;
        }
        runs
    });

    // /healthz
    let (status, body) = get(addr, "/healthz");
    assert!(status.starts_with("HTTP/1.0 200"), "{status}");
    assert_eq!(body, "ok\n");

    // /metrics — valid Prometheus exposition, engine families present.
    let (status, body) = get(addr, "/metrics");
    assert!(status.starts_with("HTTP/1.0 200"), "{status}");
    assert_prometheus(&body);
    assert!(body.contains("queries_total"), "{body}");
    assert!(body.contains("# TYPE queries_active gauge"), "{body}");

    // /queries — probe repeatedly while the worker runs: every snapshot
    // must satisfy the schema and the morsel invariant, live.
    for _ in 0..20 {
        let (status, body) = get(addr, "/queries");
        assert!(status.starts_with("HTTP/1.0 200"), "{status}");
        let doc = profile::parse_json(&body).expect("queries body is JSON");
        profile::validate_queries(&doc).expect("queries body matches its schema");
    }

    // /sites — after a distributed run, the per-site totals document
    // carries an entry per site whose numbers are live and well-formed.
    run_with_policy(
        &query(),
        &catalog(),
        Strategy::GmdjOptimized,
        ExecPolicy::distributed(2).with_real_sites(true),
    )
    .expect("distributed warm-up query succeeds");
    let (status, body) = get(addr, "/sites");
    assert!(status.starts_with("HTTP/1.0 200"), "{status}");
    let doc = profile::parse_json(&body).expect("sites body is JSON");
    let entries = doc
        .get("sites")
        .and_then(profile::Json::as_arr)
        .expect("sites array present");
    assert!(entries.len() >= 2, "distributed(2) feeds two sites: {body}");
    for entry in entries {
        for key in [
            "site",
            "roundtrips",
            "attempts",
            "roundtrip_ns",
            "site_wall_ns",
            "merge_ns",
            "rows_scanned",
            "fragment_rows",
            "bytes_sent",
            "bytes_received",
        ] {
            assert!(
                entry.get(key).and_then(profile::Json::as_num).is_some(),
                "missing `{key}` in {body}"
            );
        }
        assert!(entry.get("label").and_then(profile::Json::as_str).is_some());
        assert!(
            entry
                .get("roundtrips")
                .and_then(profile::Json::as_num)
                .unwrap()
                >= 1.0,
            "{body}"
        );
    }

    // /flight — a well-formed ring dump with the documented keys.
    let (status, body) = get(addr, "/flight");
    assert!(status.starts_with("HTTP/1.0 200"), "{status}");
    let doc = profile::parse_json(&body).expect("flight body is JSON");
    for key in ["capacity", "dropped"] {
        assert!(
            doc.get(key).and_then(profile::Json::as_num).is_some(),
            "missing `{key}` in {body}"
        );
    }
    assert!(doc.get("events").and_then(profile::Json::as_arr).is_some());

    // 404 for anything else; the server keeps serving afterwards.
    let (status, _) = get(addr, "/nope");
    assert!(status.starts_with("HTTP/1.0 404"), "{status}");
    let (status, _) = get(addr, "/healthz");
    assert!(status.starts_with("HTTP/1.0 200"), "{status}");

    stop.store(true, Ordering::Relaxed);
    let runs = worker.join().expect("worker thread exits cleanly");
    assert!(runs > 0, "the background engine actually ran queries");

    // After the worker stopped, the cumulative totals reflect its runs
    // and the final morsel reconciliation holds in the totals too.
    let (_, body) = get(addr, "/queries");
    let doc = profile::parse_json(&body).unwrap();
    let totals = doc.get("totals").expect("totals present");
    let started = totals
        .get("queries_started")
        .and_then(profile::Json::as_num)
        .unwrap();
    assert!(started >= runs as f64);

    server.shutdown();
    // Once shut down, the port stops answering.
    assert!(
        TcpStream::connect(addr).is_err() || {
            // A TIME_WAIT accept may still connect; a request must fail.
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"GET /healthz HTTP/1.0\r\n\r\n").ok();
            let mut out = String::new();
            s.read_to_string(&mut out).is_err() || out.is_empty()
        }
    );
}
