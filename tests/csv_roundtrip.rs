//! Integration: generated data survives a CSV round trip and produces the
//! same query answers — the import/export path a downstream user relies
//! on.

use std::io::BufReader;

use gmdj_core::exec::{MemoryCatalog, TableProvider};
use gmdj_datagen::tpcr::{TpcrConfig, TpcrData};
use gmdj_engine::strategy::{run, Strategy};
use gmdj_relation::csv::{read_csv, read_csv_infer, write_csv};
use gmdj_sql::parse_query;

#[test]
fn tpcr_tables_round_trip_and_answer_identically() {
    let data = TpcrData::generate(&TpcrConfig::tiny(5));
    let original = MemoryCatalog::new()
        .with("customer", data.customer.clone())
        .with("orders", data.orders.clone());

    // Round trip through CSV bytes with schema-checked reading.
    let mut catalog = MemoryCatalog::new();
    for (name, rel) in [("customer", &data.customer), ("orders", &data.orders)] {
        let mut buf = Vec::new();
        write_csv(rel, &mut buf).unwrap();
        let mut reader = BufReader::new(buf.as_slice());
        let back = read_csv(&mut reader, rel.schema().clone()).unwrap();
        assert!(rel.multiset_eq(&back), "{name} did not round-trip");
        catalog.register(name, back);
    }

    let query = parse_query(
        "SELECT c.custkey FROM customer c WHERE EXISTS \
         (SELECT * FROM orders o WHERE o.custkey = c.custkey AND o.totalprice > 100000)",
    )
    .unwrap();
    let a = run(&query, &original, Strategy::GmdjOptimized).unwrap();
    let b = run(&query, &catalog, Strategy::GmdjOptimized).unwrap();
    assert!(a.relation.multiset_eq(&b.relation));
}

#[test]
fn inferred_schema_preserves_types_well_enough_to_query() {
    let data = TpcrData::generate(&TpcrConfig::tiny(6));
    let mut buf = Vec::new();
    write_csv(&data.orders, &mut buf).unwrap();
    let mut reader = BufReader::new(buf.as_slice());
    let inferred = read_csv_infer(&mut reader, "orders").unwrap();
    assert!(data.orders.multiset_eq(&inferred));

    let catalog = MemoryCatalog::new()
        .with("customer", data.customer)
        .with("orders", inferred);
    let query = parse_query(
        "SELECT o.custkey, COUNT(*) AS n FROM orders o GROUP BY o.custkey \
         ORDER BY n DESC LIMIT 3",
    )
    .unwrap();
    let r = run(&query, &catalog, Strategy::GmdjOptimized).unwrap();
    assert_eq!(r.relation.len(), 3);
    // The per-customer counts must tally with the table.
    let total_orders = catalog.table("orders").unwrap().len();
    let top: i64 = r.relation.rows()[0][1].as_i64().unwrap();
    assert!(top as usize <= total_orders);
}
