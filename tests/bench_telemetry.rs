//! Integration tests for the bench telemetry subsystem
//! (`crates/bench/src/telemetry.rs`, `repro bench`):
//!
//! * counter determinism — the same seed under Sequential produces a
//!   byte-identical counter section across two independent runs;
//! * schema validation — a hand-corrupted report is rejected;
//! * baseline gating — an injected counter drift fails the gate with a
//!   plan-node diff, wall-clock noise only warns.

use gmdj_bench::profile::{parse_json, Json};
use gmdj_bench::telemetry::{
    compare_reports, counter_section, run_bench, validate_bench, BenchConfig, COUNTER_KEYS,
};
use gmdj_bench::FigureId;

/// A tiny but representative configuration: one figure, sequential only,
/// no ablations — fast enough to run twice in a test.
fn tiny() -> BenchConfig {
    BenchConfig {
        figures: vec![FigureId::Fig2],
        scale: 0.002,
        seed: 42,
        warmup: 0,
        reps: 2,
        ablations: false,
        cross_policy: false,
        quick: true,
        vectorized: true,
        real_sites: false,
        morsel_size: None,
        concurrent: None,
    }
}

/// The vectorized and row-path scans must record byte-identical counter
/// sections — the gated projection is a semantic contract, and both legs
/// gate against the same baseline in CI.
#[test]
fn vectorized_and_rowpath_counter_sections_are_byte_identical() {
    let on = run_bench(&tiny()).unwrap();
    let off = run_bench(&BenchConfig {
        vectorized: false,
        ..tiny()
    })
    .unwrap();
    let sa = counter_section(&parse_json(&on.to_json()).unwrap()).unwrap();
    let sb = counter_section(&parse_json(&off.to_json()).unwrap()).unwrap();
    assert!(!sa.is_empty());
    assert_eq!(sa, sb);
    // The run ids differ so a row-path recording never shadows the
    // canonical one.
    assert!(off.to_json().contains("_rowpath"), "{}", off.to_json());
}

/// Same contract for the transports: a bench over real socket-backed
/// sites must record a counter section byte-identical to the in-process
/// simulation's (wire byte counts are deliberately outside the gated
/// projection), and record under a distinct `_realsites` run id.
#[test]
fn real_sites_and_in_process_counter_sections_are_byte_identical() {
    let cfg = BenchConfig {
        cross_policy: true, // so distributed cells actually exist
        ..tiny()
    };
    let sim = run_bench(&cfg).unwrap();
    let real = run_bench(&BenchConfig {
        real_sites: true,
        ..cfg
    })
    .unwrap();
    let sa = counter_section(&parse_json(&sim.to_json()).unwrap()).unwrap();
    let sb = counter_section(&parse_json(&real.to_json()).unwrap()).unwrap();
    assert!(sa.contains(" dist2\n"), "{sa}");
    assert_eq!(sa, sb);
    assert!(real.to_json().contains("_realsites"), "{}", real.to_json());
}

#[test]
fn same_seed_sequential_counter_sections_are_byte_identical() {
    let a = run_bench(&tiny()).unwrap();
    let b = run_bench(&tiny()).unwrap();
    let sa = counter_section(&parse_json(&a.to_json()).unwrap()).unwrap();
    let sb = counter_section(&parse_json(&b.to_json()).unwrap()).unwrap();
    assert!(!sa.is_empty());
    assert_eq!(
        sa, sb,
        "counter sections must be byte-identical at a fixed seed"
    );
    // Wall-clock is expected to differ between runs; only the counter
    // projection is deterministic. (If the whole documents happen to be
    // equal the timer resolution collapsed — don't assert either way.)
    assert!(sa.contains("theta_evals="), "{sa}");
    assert!(sa.contains("plan GMDJ") || sa.contains("plan "), "{sa}");
}

#[test]
fn cross_policy_counters_are_reproducible_too() {
    let cfg = BenchConfig {
        cross_policy: true,
        ..tiny()
    };
    let a = run_bench(&cfg).unwrap();
    let b = run_bench(&cfg).unwrap();
    let sa = counter_section(&parse_json(&a.to_json()).unwrap()).unwrap();
    let sb = counter_section(&parse_json(&b.to_json()).unwrap()).unwrap();
    assert!(sa.contains(" par2\n"), "{sa}");
    assert!(sa.contains(" dist2\n"), "{sa}");
    assert_eq!(sa, sb);
}

#[test]
fn generated_report_validates_and_corruptions_are_rejected() {
    let report = run_bench(&tiny()).unwrap();
    let json = report.to_json();
    let doc = parse_json(&json).unwrap();
    validate_bench(&doc).unwrap();

    // Hand-corrupt the report in several ways; each must be rejected.
    let corruptions = [
        // Wrong version.
        (
            json.replacen("\"version\":2", "\"version\":999", 1),
            "version",
        ),
        // A counter key deleted from the first entry.
        (
            json.replacen("\"theta_evals\":", "\"theta_evalz\":", 1),
            "theta_evals",
        ),
        // Gated flag replaced by a string.
        (
            json.replacen("\"gated\":true", "\"gated\":\"yes\"", 1),
            "gated",
        ),
        // Wall summary loses a field.
        (
            json.replacen("\"trimmed_mean_us\":", "\"trimmed_mean_uz\":", 1),
            "trimmed_mean_us",
        ),
        // Mode outside the enum.
        (
            json.replacen("\"mode\":\"quick\"", "\"mode\":\"fast\"", 1),
            "mode",
        ),
    ];
    for (corrupted, what) in corruptions {
        assert_ne!(corrupted, json, "corruption `{what}` did not apply");
        let doc = parse_json(&corrupted).expect("still valid JSON");
        let err = validate_bench(&doc).expect_err(&format!("`{what}` corruption must fail"));
        assert!(!err.is_empty());
    }
}

/// Replace the first occurrence of `"key":<number>` after `from` with
/// `"key":<number + delta>` — a surgical counter injection.
fn bump_counter(json: &str, key: &str, delta: u64) -> String {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle).expect("counter present") + needle.len();
    let end = at
        + json[at..]
            .find(|c: char| !c.is_ascii_digit())
            .expect("number terminated");
    let value: u64 = json[at..end].parse().expect("counter numeric");
    format!("{}{}{}", &json[..at], value + delta, &json[end..])
}

#[test]
fn baseline_gate_flags_injected_counter_drift() {
    let report = run_bench(&tiny()).unwrap();
    let json = report.to_json();
    let baseline = parse_json(&json).unwrap();

    // Identical documents: gate passes, nothing to report.
    let clean = compare_reports(&baseline, &baseline, 0.25).unwrap();
    assert!(!clean.gate_failed(), "{}", clean.render());
    assert!(clean.wall_warnings.is_empty());

    // Inject +7 into the first theta_evals counter: hard failure.
    let drifted = parse_json(&bump_counter(&json, "theta_evals", 7)).unwrap();
    validate_bench(&drifted).unwrap();
    let cmp = compare_reports(&drifted, &baseline, 0.25).unwrap();
    assert!(cmp.gate_failed(), "injected drift must fail the gate");
    let rendered = cmp.render();
    assert!(rendered.contains("DRIFT"), "{rendered}");
    assert!(rendered.contains("theta_evals"), "{rendered}");

    // Wall-clock drift alone: warn, but the gate holds.
    let slow = parse_json(&bump_counter(&json, "trimmed_mean_us", 10_000_000)).unwrap();
    let cmp = compare_reports(&slow, &baseline, 0.25).unwrap();
    assert!(!cmp.gate_failed(), "{}", cmp.render());
    assert!(!cmp.wall_warnings.is_empty(), "{}", cmp.render());
    assert!(cmp.render().contains("WARN"), "{}", cmp.render());
}

#[test]
fn plan_node_drift_names_the_regressed_node_with_costs() {
    let report = run_bench(&tiny()).unwrap();
    let json = report.to_json();
    let baseline = parse_json(&json).unwrap();

    // `rows_out` only exists inside plan counter trees (the entry level
    // uses `rows`), so bumping its first occurrence drifts a plan node
    // while leaving every entry-level rollup untouched — the gate must
    // still fail, pointing at the node and pricing it.
    let drifted = parse_json(&bump_counter(&json, "rows_out", 3)).unwrap();
    let cmp = compare_reports(&drifted, &baseline, 0.25).unwrap();
    assert!(cmp.gate_failed());
    let rendered = cmp.render();
    assert!(rendered.contains("plan node"), "{rendered}");
    assert!(rendered.contains("cost predicted="), "{rendered}");
    assert!(rendered.contains("observed="), "{rendered}");
}

#[test]
fn gated_entry_missing_from_current_run_is_a_drift() {
    let report = run_bench(&tiny()).unwrap();
    let baseline = parse_json(&report.to_json()).unwrap();
    // Simulate a shrunken grid: drop the last entry from the parsed tree.
    let mut current = parse_json(&report.to_json()).unwrap();
    if let Json::Obj(members) = &mut current {
        for (key, value) in members.iter_mut() {
            if key == "entries" {
                if let Json::Arr(entries) = value {
                    assert!(entries.len() >= 2);
                    entries.pop();
                }
            }
        }
    }
    validate_bench(&current).unwrap();
    let cmp = compare_reports(&current, &baseline, 0.25).unwrap();
    assert!(cmp.gate_failed());
    assert!(
        cmp.render().contains("missing from current run"),
        "{}",
        cmp.render()
    );
}

#[test]
fn configuration_mismatch_refuses_comparison() {
    let a = parse_json(&run_bench(&tiny()).unwrap().to_json()).unwrap();
    let other = BenchConfig { seed: 7, ..tiny() };
    let b = parse_json(&run_bench(&other).unwrap().to_json()).unwrap();
    let cmp = compare_reports(&a, &b, 0.25).unwrap();
    assert!(cmp.gate_failed());
    assert!(
        cmp.render().contains("configuration mismatch"),
        "{}",
        cmp.render()
    );
}

#[test]
fn checked_in_baseline_is_schema_valid() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../bench/baseline.json");
    let text = std::fs::read_to_string(path).expect("bench/baseline.json is checked in");
    let doc = parse_json(&text).unwrap();
    validate_bench(&doc).unwrap();
    // The baseline must gate-compare cleanly against itself and contain
    // every workload group plus the ablation grid.
    let cmp = compare_reports(&doc, &doc, 0.25).unwrap();
    assert!(!cmp.gate_failed());
    let section = counter_section(&doc).unwrap();
    for group in [
        "fig2",
        "fig3",
        "fig4",
        "fig5",
        "ablation/probe",
        "ablation/threads",
        "ablation/morsel_size",
    ] {
        assert!(section.contains(group), "baseline lacks {group}");
    }
    // Every entry carries the full counter key set.
    let entries = doc.get("entries").and_then(Json::as_arr).unwrap();
    for e in entries {
        let counters = e.get("counters").unwrap();
        for key in COUNTER_KEYS {
            assert!(counters.get(key).is_some(), "baseline entry missing {key}");
        }
    }
    // The columnar payoff, recorded: every workload whose scan touched
    // pages at all references fewer columns than the full detail schema,
    // so its column-chunk reads are strictly below the row layout's
    // full-width page reads.
    let mut narrowed = 0;
    for e in entries {
        let counters = e.get("counters").unwrap();
        let num = |k: &str| counters.get(k).and_then(Json::as_num).unwrap() as u64;
        let (col, row) = (num("col_chunk_reads"), num("row_page_reads"));
        if row > 0 {
            assert!(
                col < row,
                "baseline entry {} {} reads as many column chunks ({col}) as row pages ({row})",
                e.get("group").and_then(Json::as_str).unwrap_or("?"),
                e.get("label").and_then(Json::as_str).unwrap_or("?"),
            );
            narrowed += 1;
        }
    }
    assert!(narrowed > 0, "no entry recorded page accounting");
}
