//! Property tests for the site wire protocol (`gmdj_core::wire`).
//!
//! Two families, both driven by a deterministic SplitMix64 stream (the
//! fuzz harness's generator, so failures replay from a seed alone):
//!
//! 1. **Round-trip identity** — for every frame type, randomized frames
//!    satisfy `decode(encode(f)) == f`, both through the buffer codec
//!    and the streaming reader (which must also report the exact byte
//!    count it consumed — that number feeds the `bytes_sent` /
//!    `bytes_received` counters and the request-size echo).
//! 2. **Corruption rejection** — a frame damaged in any single header
//!    field (magic, version, frame type, length prefix), truncated at
//!    any point, or extended with trailing bytes must be *rejected*,
//!    never panic, never allocate unboundedly. Random payload bit-flips
//!    must never panic either (they may still decode: flipping a value
//!    byte yields a different, equally well-formed frame).
//!
//! A greedy byte-shrinker keeps rejection counterexamples minimal: when
//! a corrupted buffer fails to decode, the test shrinks it to a locally
//! minimal failing input before asserting, so a codec regression reports
//! the smallest frame that still exhibits it.

use gmdj_core::eval::{EvalStats, KernelStats, ProbeStrategy};
use gmdj_core::spec::{AggBlock, GmdjSpec};
use gmdj_core::trace::{TraceEvent, WIRE_INTERN_TABLE};
use gmdj_core::wire::{
    decode_frame, encode_frame, read_frame, EvalRequestFrame, Frame, StateMatrixFrame,
    MAX_FRAME_LEN, WIRE_VERSION,
};
use gmdj_fuzz::rng::SplitMix64;
use gmdj_relation::agg::{Accumulator, AggFunc, NamedAgg};
use gmdj_relation::expr::{ArithOp, CmpOp, Predicate, ScalarExpr};
use gmdj_relation::fxhash::FxHashSet;
use gmdj_relation::relation::Tuple;
use gmdj_relation::schema::{ColumnRef, DataType, Field};
use gmdj_relation::value::{Truth, Value};

// ---------------------------------------------------------------------
// Random frame generators (SplitMix64-driven, replayable from a seed)
// ---------------------------------------------------------------------

fn gen_string(rng: &mut SplitMix64) -> String {
    let len = rng.below(8) as usize;
    (0..len)
        .map(|_| char::from(b'a' + rng.below(26) as u8))
        .collect()
}

/// Finite values only: Float comes from small exact dyadics so frame
/// equality is bit-for-bit (NaN would break `PartialEq` round-trips).
fn gen_value(rng: &mut SplitMix64) -> Value {
    match rng.below(5) {
        0 => Value::Null,
        1 => Value::Int(rng.next_u64() as i64),
        2 => Value::Float((rng.below(4096) as f64 - 2048.0) / 8.0),
        3 => Value::Str(gen_string(rng).into()),
        _ => Value::Bool(rng.chance(50)),
    }
}

fn gen_colref(rng: &mut SplitMix64) -> ColumnRef {
    ColumnRef {
        qualifier: rng.chance(60).then(|| gen_string(rng)),
        name: gen_string(rng),
    }
}

fn gen_scalar(rng: &mut SplitMix64, depth: u32) -> ScalarExpr {
    match if depth == 0 {
        rng.below(2)
    } else {
        rng.below(4)
    } {
        0 => ScalarExpr::Column(gen_colref(rng)),
        1 => ScalarExpr::Literal(gen_value(rng)),
        2 => ScalarExpr::Binary {
            op: *rng.pick(&[ArithOp::Add, ArithOp::Sub, ArithOp::Mul, ArithOp::Div]),
            left: Box::new(gen_scalar(rng, depth - 1)),
            right: Box::new(gen_scalar(rng, depth - 1)),
        },
        _ => ScalarExpr::Case {
            branches: (0..1 + rng.below(2))
                .map(|_| (gen_predicate(rng, depth - 1), gen_scalar(rng, depth - 1)))
                .collect(),
            otherwise: rng.chance(50).then(|| Box::new(gen_scalar(rng, depth - 1))),
        },
    }
}

fn gen_predicate(rng: &mut SplitMix64, depth: u32) -> Predicate {
    match if depth == 0 {
        rng.below(4)
    } else {
        rng.below(7)
    } {
        0 => Predicate::Literal(*rng.pick(&[Truth::True, Truth::False, Truth::Unknown])),
        1 => Predicate::Cmp {
            op: *rng.pick(&[
                CmpOp::Eq,
                CmpOp::Ne,
                CmpOp::Lt,
                CmpOp::Le,
                CmpOp::Gt,
                CmpOp::Ge,
            ]),
            left: gen_scalar(rng, depth.saturating_sub(1)),
            right: gen_scalar(rng, depth.saturating_sub(1)),
        },
        2 => Predicate::IsNull(gen_scalar(rng, depth.saturating_sub(1))),
        3 => Predicate::IsNotNull(gen_scalar(rng, depth.saturating_sub(1))),
        4 => Predicate::And(
            Box::new(gen_predicate(rng, depth - 1)),
            Box::new(gen_predicate(rng, depth - 1)),
        ),
        5 => Predicate::Or(
            Box::new(gen_predicate(rng, depth - 1)),
            Box::new(gen_predicate(rng, depth - 1)),
        ),
        _ => Predicate::Not(Box::new(gen_predicate(rng, depth - 1))),
    }
}

fn gen_spec(rng: &mut SplitMix64) -> GmdjSpec {
    let funcs = [
        AggFunc::CountStar,
        AggFunc::Count,
        AggFunc::CountDistinct,
        AggFunc::Sum,
        AggFunc::Min,
        AggFunc::Max,
        AggFunc::Avg,
    ];
    GmdjSpec::new(
        (0..1 + rng.below(3))
            .map(|_| {
                AggBlock::new(
                    gen_predicate(rng, 2),
                    (0..1 + rng.below(2))
                        .map(|_| {
                            let func = *rng.pick(&funcs);
                            let output = gen_string(rng);
                            match func {
                                AggFunc::CountStar => NamedAgg::count_star(output),
                                _ => NamedAgg::new(func, gen_scalar(rng, 1), output),
                            }
                        })
                        .collect(),
                )
            })
            .collect(),
    )
}

fn gen_fields(rng: &mut SplitMix64) -> Vec<Field> {
    let types = [
        DataType::Int,
        DataType::Float,
        DataType::Str,
        DataType::Bool,
    ];
    (0..1 + rng.below(4))
        .map(|i| Field::new("B", format!("c{i}"), *rng.pick(&types)))
        .collect()
}

fn gen_tuple(rng: &mut SplitMix64, width: usize) -> Tuple {
    (0..width)
        .map(|_| gen_value(rng))
        .collect::<Vec<_>>()
        .into_boxed_slice()
}

fn gen_eval_stats(rng: &mut SplitMix64) -> EvalStats {
    EvalStats {
        detail_scanned: rng.below(1000),
        probe_candidates: rng.below(1000),
        theta_evals: rng.below(1000),
        agg_updates: rng.below(1000),
        base_rows: rng.below(1000),
        dead_early: rng.below(1000),
        done_early: rng.below(1000),
        index_builds: rng.below(1000),
        partitions: rng.below(1000),
        completion_fallbacks: rng.below(1000),
        col_chunk_reads: rng.below(1000),
        row_page_reads: rng.below(1000),
    }
}

fn gen_kernel_stats(rng: &mut SplitMix64) -> KernelStats {
    KernelStats {
        batches: rng.below(1000),
        rows_vectorized: rng.below(1000),
        rows_row_path: rng.below(1000),
        morsels: rng.below(1000),
    }
}

fn gen_accumulator(rng: &mut SplitMix64) -> Accumulator {
    match rng.below(7) {
        0 => Accumulator::CountStar {
            n: rng.below(1000) as i64,
        },
        1 => Accumulator::Count {
            n: rng.below(1000) as i64,
        },
        2 => {
            let mut seen = FxHashSet::default();
            for _ in 0..rng.below(5) {
                seen.insert(gen_value(rng));
            }
            Accumulator::CountDistinct { seen }
        }
        3 => Accumulator::Sum {
            sum_i: rng.next_u64() as i64,
            sum_f: rng.below(4096) as f64 / 16.0,
            any_float: rng.chance(50),
            seen: rng.chance(50),
        },
        4 => Accumulator::Min {
            current: rng.chance(70).then(|| gen_value(rng)),
        },
        5 => Accumulator::Max {
            current: rng.chance(70).then(|| gen_value(rng)),
        },
        _ => Accumulator::Avg {
            sum: rng.below(4096) as f64 / 16.0,
            n: rng.below(1000) as i64,
        },
    }
}

/// A wire-shippable trace event: name and field keys must come from
/// [`WIRE_INTERN_TABLE`] — the strict decoder rejects anything else, so
/// the generator draws from the same table the codec re-interns against.
fn gen_trace_event(rng: &mut SplitMix64) -> TraceEvent {
    let nfields = rng.below(4) as usize;
    TraceEvent {
        name: WIRE_INTERN_TABLE[rng.below(WIRE_INTERN_TABLE.len() as u64) as usize],
        detail: gen_string(rng),
        start_ns: rng.below(1 << 40),
        dur_ns: rng.below(1 << 32),
        fields: (0..nfields)
            .map(|_| {
                (
                    WIRE_INTERN_TABLE[rng.below(WIRE_INTERN_TABLE.len() as u64) as usize],
                    rng.next_u64(),
                )
            })
            .collect(),
    }
}

fn gen_eval_request(rng: &mut SplitMix64) -> Frame {
    let fields = gen_fields(rng);
    let width = fields.len();
    Frame::EvalRequest(Box::new(EvalRequestFrame {
        attempt: rng.below(4) as u32,
        query_id: rng.next_u64(),
        parent_span: rng.next_u64(),
        trace: rng.chance(50),
        probe: *rng.pick(&[ProbeStrategy::Auto, ProbeStrategy::ForceScan]),
        partition_rows: rng.chance(50).then(|| rng.below(1 << 20)),
        vectorized: rng.chance(50),
        total_aggs: 1 + rng.below(4) as u32,
        base_fields: fields,
        base_rows: (0..rng.below(6)).map(|_| gen_tuple(rng, width)).collect(),
        spec: gen_spec(rng),
    }))
}

fn gen_state_matrix(rng: &mut SplitMix64) -> Frame {
    Frame::StateMatrix(Box::new(StateMatrixFrame {
        request_bytes: rng.below(1 << 30),
        fragment_rows: rng.below(1 << 20),
        stats: gen_eval_stats(rng),
        kernel: gen_kernel_stats(rng),
        site_wall_ns: rng.below(1 << 40),
        spans: (0..rng.below(4)).map(|_| gen_trace_event(rng)).collect(),
        accs: (0..rng.below(12)).map(|_| gen_accumulator(rng)).collect(),
    }))
}

fn gen_flight_tail(rng: &mut SplitMix64) -> Frame {
    Frame::FlightTail {
        dropped: rng.below(1 << 20),
        events: (0..rng.below(5)).map(|_| gen_trace_event(rng)).collect(),
    }
}

/// One random frame of any type. `below(10)` skews toward the two
/// payload-bearing frames — they carry all the interesting structure.
fn gen_frame(rng: &mut SplitMix64) -> Frame {
    match rng.below(10) {
        0 => Frame::Hello {
            site: rng.next_u64() as u32,
        },
        1 => Frame::HelloAck {
            site: rng.next_u64() as u32,
        },
        2 => Frame::Error {
            message: gen_string(rng),
        },
        3 => Frame::FlightRequest {
            site: rng.next_u64() as u32,
        },
        4 => gen_flight_tail(rng),
        5..=7 => gen_eval_request(rng),
        _ => gen_state_matrix(rng),
    }
}

// ---------------------------------------------------------------------
// Shrinking
// ---------------------------------------------------------------------

/// Greedily shrink a buffer that `decode_frame` rejects to a locally
/// minimal rejected input: repeatedly delete one byte (then one chunk)
/// wherever decoding still fails. Purely for diagnostics — the result
/// rides in the panic message so codec regressions report the smallest
/// reproducer, not a multi-kilobyte frame dump.
fn shrink_rejected(mut bytes: Vec<u8>) -> Vec<u8> {
    assert!(
        decode_frame(&bytes).is_err(),
        "shrinker needs a failing input"
    );
    for chunk in [64usize, 16, 4, 1] {
        let mut i = 0;
        while i < bytes.len() {
            let end = (i + chunk).min(bytes.len());
            let mut candidate = bytes.clone();
            candidate.drain(i..end);
            if decode_frame(&candidate).is_err() {
                bytes = candidate; // keep the deletion, retry same offset
            } else {
                i += 1;
            }
        }
    }
    bytes
}

// ---------------------------------------------------------------------
// Round-trip identity
// ---------------------------------------------------------------------

#[test]
fn every_frame_type_round_trips() {
    let mut rng = SplitMix64::new(0xF8A3E);
    let mut seen = [0usize; 7];
    for case in 0..400 {
        let frame = gen_frame(&mut rng);
        seen[match &frame {
            Frame::Hello { .. } => 0,
            Frame::HelloAck { .. } => 1,
            Frame::EvalRequest(_) => 2,
            Frame::StateMatrix(_) => 3,
            Frame::Error { .. } => 4,
            Frame::FlightRequest { .. } => 5,
            Frame::FlightTail { .. } => 6,
        }] += 1;
        let bytes = encode_frame(&frame);
        let decoded = decode_frame(&bytes)
            .unwrap_or_else(|e| panic!("case {case}: decode failed: {e}\nframe: {frame:?}"));
        assert_eq!(decoded, frame, "case {case}: round-trip changed the frame");
        // The streaming reader agrees and reports the exact byte count —
        // that number feeds the bytes_sent/received counters and the
        // request-size echo the coordinator cross-checks.
        let (streamed, n) = read_frame(&mut bytes.as_slice())
            .unwrap_or_else(|e| panic!("case {case}: stream decode failed: {e}"));
        assert_eq!(streamed, frame, "case {case}");
        assert_eq!(n, bytes.len() as u64, "case {case}: byte count drifted");
    }
    assert!(
        seen.iter().all(|&n| n > 0),
        "generator never produced some frame type: {seen:?}"
    );
}

/// Re-encoding a decoded frame is byte-identical: the codec has exactly
/// one wire form per frame (no tolerated alternate encodings a
/// corrupted-but-accepted buffer could hide in). CountDistinct is the
/// one exception — its set iterates in hash order — so this sticks to
/// frames without it.
#[test]
fn encoding_is_canonical() {
    let mut rng = SplitMix64::new(0xCA201);
    for _ in 0..200 {
        let frame = match gen_frame(&mut rng) {
            Frame::StateMatrix(_) => Frame::Hello { site: 1 },
            f => f,
        };
        let bytes = encode_frame(&frame);
        let reencoded = encode_frame(&decode_frame(&bytes).unwrap());
        assert_eq!(bytes, reencoded, "non-canonical encoding for {frame:?}");
    }
}

// ---------------------------------------------------------------------
// Corruption rejection, field by header field
// ---------------------------------------------------------------------

fn assert_rejected(bytes: Vec<u8>, what: &str) {
    if decode_frame(&bytes).is_ok() {
        panic!("{what}: corrupted frame was accepted");
    }
    // Shrink before reporting; also proves the shrinker preserves failure.
    let minimal = shrink_rejected(bytes);
    assert!(
        decode_frame(&minimal).is_err(),
        "{what}: shrinker produced an accepted input {minimal:?}"
    );
}

#[test]
fn bad_magic_is_rejected() {
    let mut rng = SplitMix64::new(0xBAD);
    for _ in 0..50 {
        let mut bytes = encode_frame(&gen_frame(&mut rng));
        let i = rng.below(4) as usize;
        bytes[i] ^= 1 << rng.below(8);
        assert_rejected(bytes, "magic");
    }
}

#[test]
fn foreign_version_is_rejected() {
    let mut rng = SplitMix64::new(0x7E55);
    for _ in 0..50 {
        let mut bytes = encode_frame(&gen_frame(&mut rng));
        let bad = loop {
            let v = rng.next_u64() as u16;
            if v != WIRE_VERSION {
                break v;
            }
        };
        bytes[4..6].copy_from_slice(&bad.to_le_bytes());
        assert_rejected(bytes, "version");
    }
}

#[test]
fn unknown_frame_type_is_rejected() {
    let mut rng = SplitMix64::new(0xF7);
    for _ in 0..50 {
        let mut bytes = encode_frame(&gen_frame(&mut rng));
        bytes[6] = 8 + (rng.next_u64() % 248) as u8; // valid types are 1..=7
        assert_rejected(bytes, "frame type");
    }
}

#[test]
fn length_prefix_mismatch_is_rejected() {
    let mut rng = SplitMix64::new(0x1E27);
    for _ in 0..50 {
        let frame = gen_frame(&mut rng);
        let bytes = encode_frame(&frame);
        let real = bytes.len() as u32 - 11;
        // Any length other than the true one must be rejected: shorter
        // (payload has trailing bytes), longer (payload truncated), and
        // beyond MAX_FRAME_LEN (rejected straight from the header).
        for bad in [
            real.wrapping_sub(1 + rng.below(3) as u32),
            real + 1 + rng.below(100) as u32,
            MAX_FRAME_LEN + 1,
            u32::MAX,
        ] {
            if bad == real {
                continue;
            }
            let mut corrupted = bytes.clone();
            corrupted[7..11].copy_from_slice(&bad.to_le_bytes());
            assert_rejected(corrupted, "length prefix");
        }
    }
}

#[test]
fn truncation_at_any_point_is_rejected() {
    let mut rng = SplitMix64::new(0x7214);
    for _ in 0..20 {
        let bytes = encode_frame(&gen_frame(&mut rng));
        // Every strict prefix: sampled for long frames, exhaustive short.
        let cuts: Vec<usize> = if bytes.len() <= 64 {
            (0..bytes.len()).collect()
        } else {
            (0..64)
                .map(|_| rng.below(bytes.len() as u64) as usize)
                .collect()
        };
        for cut in cuts {
            let prefix = bytes[..cut].to_vec();
            assert!(
                decode_frame(&prefix).is_err(),
                "accepted a {cut}-byte prefix of a {}-byte frame",
                bytes.len()
            );
            assert!(
                read_frame(&mut &prefix[..]).is_err(),
                "stream reader accepted a {cut}-byte prefix"
            );
        }
    }
}

#[test]
fn trailing_bytes_are_rejected() {
    let mut rng = SplitMix64::new(0x7A11);
    for _ in 0..50 {
        let mut bytes = encode_frame(&gen_frame(&mut rng));
        for _ in 0..1 + rng.below(8) {
            bytes.push(rng.next_u64() as u8);
        }
        assert_rejected(bytes, "trailing bytes");
    }
}

/// Random single-bit payload corruption must never panic and never
/// violate canonicality: either the buffer is rejected, or it decodes
/// to a frame (possibly a different one — flipping a literal's bit is
/// undetectable by design) that re-encodes and decodes consistently.
#[test]
fn payload_bit_flips_never_panic() {
    let mut rng = SplitMix64::new(0x5EED);
    for _ in 0..300 {
        let mut bytes = encode_frame(&gen_frame(&mut rng));
        if bytes.len() == 11 {
            continue; // no payload to corrupt
        }
        let i = 11 + rng.below(bytes.len() as u64 - 11) as usize;
        bytes[i] ^= 1 << rng.below(8);
        if let Ok(frame) = decode_frame(&bytes) {
            let reencoded = encode_frame(&frame);
            assert_eq!(
                decode_frame(&reencoded).unwrap(),
                frame,
                "accepted corruption broke canonical re-encoding"
            );
        }
    }
}

/// The shrinker itself: a truncated EvalRequest shrinks all the way to
/// a locally minimal rejected input no bigger than a bare header — the
/// counterexamples it reports stay readable.
#[test]
fn shrinker_finds_minimal_rejected_frames() {
    let mut rng = SplitMix64::new(0x3A11);
    let bytes = encode_frame(&gen_eval_request(&mut rng));
    let truncated = bytes[..bytes.len() - 1].to_vec();
    let minimal = shrink_rejected(truncated);
    assert!(decode_frame(&minimal).is_err());
    assert!(
        minimal.len() <= 11,
        "greedy shrink should reach a sub-header reproducer, got {} bytes",
        minimal.len()
    );
}
