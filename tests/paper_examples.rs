//! End-to-end checks of every worked example in the paper, executed under
//! all evaluation strategies.

use gmdj_algebra::ast::{exists, not_exists, NestedPredicate, QueryExpr, SubqueryPred};
use gmdj_core::exec::MemoryCatalog;
use gmdj_core::spec::{AggBlock, GmdjSpec};
use gmdj_engine::olap::{Aggregation, OlapQuery};
use gmdj_engine::strategy::{explain_gmdj, run_all_agree, Strategy};
use gmdj_relation::agg::NamedAgg;
use gmdj_relation::expr::{col, lit, CmpOp};
use gmdj_relation::ops;
use gmdj_relation::relation::{Relation, RelationBuilder};
use gmdj_relation::schema::{ColumnRef, DataType};
use gmdj_relation::value::Value;

fn figure_1_catalog() -> MemoryCatalog {
    let hours = RelationBuilder::new("Hours")
        .column("HourDsc", DataType::Int)
        .column("StartInterval", DataType::Int)
        .column("EndInterval", DataType::Int)
        .row(vec![1.into(), 0.into(), 60.into()])
        .row(vec![2.into(), 61.into(), 120.into()])
        .row(vec![3.into(), 121.into(), 180.into()])
        .build()
        .unwrap();
    let flow = RelationBuilder::new("Flow")
        .column("SourceIP", DataType::Str)
        .column("DestIP", DataType::Str)
        .column("StartTime", DataType::Int)
        .column("Protocol", DataType::Str)
        .column("NumBytes", DataType::Int)
        .row(vec![
            "10.0.0.1".into(),
            "167.167.167.0".into(),
            43.into(),
            "HTTP".into(),
            12.into(),
        ])
        .row(vec![
            "10.0.0.2".into(),
            "10.0.0.9".into(),
            86.into(),
            "HTTP".into(),
            36.into(),
        ])
        .row(vec![
            "10.0.0.1".into(),
            "10.0.0.8".into(),
            99.into(),
            "FTP".into(),
            48.into(),
        ])
        .row(vec![
            "10.0.0.3".into(),
            "168.168.168.0".into(),
            132.into(),
            "HTTP".into(),
            24.into(),
        ])
        .row(vec![
            "10.0.0.2".into(),
            "10.0.0.7".into(),
            156.into(),
            "HTTP".into(),
            24.into(),
        ])
        .row(vec![
            "10.0.0.3".into(),
            "10.0.0.9".into(),
            161.into(),
            "FTP".into(),
            48.into(),
        ])
        .build()
        .unwrap();
    MemoryCatalog::new().with("Hours", hours).with("Flow", flow)
}

fn full_lineup() -> Vec<Strategy> {
    vec![
        Strategy::NaiveNestedLoop,
        Strategy::NativeSmart,
        Strategy::NativeSmartNoIndex,
        Strategy::JoinUnnest,
        Strategy::JoinUnnestNoIndex,
        Strategy::GmdjBasic,
        Strategy::GmdjOptimized,
        Strategy::GmdjOptimizedNoProbeIndex,
        Strategy::GmdjBasicNoProbeIndex,
    ]
}

/// Figure 1 — exact sums from Example 2.1's GMDJ.
#[test]
fn figure_1_golden_output() {
    use gmdj_core::eval::{eval_gmdj, EvalStats, GmdjOptions};
    use gmdj_core::exec::TableProvider;
    let catalog = figure_1_catalog();
    let in_hour = col("F.StartTime")
        .ge(col("H.StartInterval"))
        .and(col("F.StartTime").lt(col("H.EndInterval")));
    let spec = GmdjSpec::new(vec![
        AggBlock::new(
            in_hour.clone().and(col("F.Protocol").eq(lit("HTTP"))),
            vec![NamedAgg::sum(col("F.NumBytes"), "sum1")],
        ),
        AggBlock::new(in_hour, vec![NamedAgg::sum(col("F.NumBytes"), "sum2")]),
    ]);
    let mut stats = EvalStats::default();
    let out = eval_gmdj(
        &catalog.table("Hours").unwrap().renamed("H"),
        &catalog.table("Flow").unwrap().renamed("F"),
        &spec,
        &GmdjOptions::default(),
        &mut stats,
    )
    .unwrap();
    let rows = out.sorted_rows();
    // Figure 1: (1, 12/12), (2, 36/84), (3, 48/96).
    let expected = [(1, 12, 12), (2, 36, 84), (3, 48, 96)];
    for ((hour, s1, s2), row) in expected.iter().zip(&rows) {
        assert_eq!(row[0], Value::Int(*hour));
        assert_eq!(row[3], Value::Int(*s1));
        assert_eq!(row[4], Value::Int(*s2));
    }
    // "a single scan of the detail table".
    assert_eq!(stats.detail_scanned, 6);
    assert_eq!(stats.partitions, 1);
}

/// Example 2.2 — EXISTS-filtered base table, full OLAP query, all
/// strategies agree; only the hour with traffic to the watched IP
/// qualifies.
#[test]
fn example_2_2_end_to_end() {
    let catalog = figure_1_catalog();
    let inner = QueryExpr::table("Flow", "FI").select_flat(
        col("FI.DestIP")
            .eq(lit("167.167.167.0"))
            .and(col("FI.StartTime").ge(col("H.StartInterval")))
            .and(col("FI.StartTime").lt(col("H.EndInterval"))),
    );
    let base = QueryExpr::table("Hours", "H").select(exists(inner));
    let results = run_all_agree(&base, &catalog, &full_lineup()).unwrap();
    assert_eq!(results[0].1.relation.len(), 1);
    assert_eq!(results[0].1.relation.rows()[0][0], Value::Int(1));

    // The full OLAP query with the web-fraction aggregation.
    let in_hour = col("FO.StartTime")
        .ge(col("H.StartInterval"))
        .and(col("FO.StartTime").lt(col("H.EndInterval")));
    let q = OlapQuery {
        base,
        aggregation: Some(Aggregation {
            detail: QueryExpr::table("Flow", "FO"),
            spec: GmdjSpec::new(vec![
                AggBlock::new(
                    in_hour.clone().and(col("FO.Protocol").eq(lit("HTTP"))),
                    vec![NamedAgg::sum(col("FO.NumBytes"), "sum1")],
                ),
                AggBlock::new(in_hour, vec![NamedAgg::sum(col("FO.NumBytes"), "sum2")]),
            ]),
            having: None,
        }),
        projection: vec![
            (col("H.HourDsc"), None),
            (col("sum1").div(col("sum2")), Some("frac".into())),
        ],
    };
    let mut previous: Option<Relation> = None;
    for strat in [
        Strategy::NativeSmart,
        Strategy::JoinUnnest,
        Strategy::GmdjBasic,
        Strategy::GmdjOptimized,
    ] {
        let (rel, _) = q.run(&catalog, strat).unwrap();
        assert_eq!(rel.len(), 1, "{strat:?}");
        assert_eq!(rel.rows()[0][1], Value::Float(1.0), "hour 1 is all HTTP");
        if let Some(p) = &previous {
            assert!(p.multiset_eq(&rel));
        }
        previous = Some(rel);
    }
}

/// Example 2.3 — three subqueries over Flow; all strategies agree and the
/// optimizer coalesces everything into one GMDJ (Example 4.1).
#[test]
fn example_2_3_and_4_1_end_to_end() {
    let catalog = figure_1_catalog();
    let flow_to = |q: &str, ip: &str| {
        QueryExpr::table("Flow", q).select_flat(
            col("F0.SourceIP")
                .eq(col(&format!("{q}.SourceIP")))
                .and(col(&format!("{q}.DestIP")).eq(lit(ip))),
        )
    };
    let base = QueryExpr::table("Flow", "F0")
        .project_distinct(vec![ColumnRef::parse("F0.SourceIP")])
        .select(
            not_exists(flow_to("F1", "167.167.167.0"))
                .and(exists(flow_to("F2", "168.168.168.0")))
                .and(not_exists(flow_to("F3", "169.169.169.0"))),
        );
    let results = run_all_agree(&base, &catalog, &full_lineup()).unwrap();
    // Only source 10.0.0.3 sends to 168… and not to 167…/169… .
    assert_eq!(results[0].1.relation.len(), 1);
    assert_eq!(results[0].1.relation.rows()[0][0], Value::str("10.0.0.3"));

    // Example 4.1: optimized plan has a single (coalesced) GMDJ.
    let basic = explain_gmdj(&base, &catalog, false).unwrap();
    let optimized = explain_gmdj(&base, &catalog, true).unwrap();
    assert_eq!(basic.matches("GMDJ").count(), 3);
    assert!(optimized.contains("FilteredGMDJ (3 blocks)"), "{optimized}");
}

/// Example 3.3/3.4 — non-neighboring predicate: one supplementary join,
/// same answers everywhere.
#[test]
fn example_3_3_end_to_end() {
    let users = RelationBuilder::new("User")
        .column("Name", DataType::Str)
        .column("IPAddress", DataType::Str)
        .row(vec!["alice".into(), "10.0.0.1".into()])
        .row(vec!["bob".into(), "10.0.0.2".into()])
        .row(vec!["carol".into(), "10.0.0.3".into()])
        .build()
        .unwrap();
    let catalog = figure_1_catalog().with("User", users);
    let theta_f = col("F.StartTime")
        .ge(col("H.StartInterval"))
        .and(col("F.StartTime").lt(col("H.EndInterval")))
        .and(col("F.SourceIP").eq(col("U.IPAddress")));
    let inner_flow = QueryExpr::table("Flow", "F").select_flat(theta_f);
    let theta_h = col("H.StartInterval").ge(lit(0));
    let hours = QueryExpr::table("Hours", "H")
        .select(NestedPredicate::Atom(theta_h).and(not_exists(inner_flow)));
    let query = QueryExpr::table("User", "U").select(not_exists(hours));

    // Tuple-iteration oracle vs GMDJ translations (the unnest strategies
    // fall back to tuple iteration for non-neighboring references, which
    // still must agree).
    let results = run_all_agree(&query, &catalog, &full_lineup()).unwrap();
    // alice sends in hours 1,2 but not 3 → inactive; bob hours 2,3 not 1;
    // carol hours 3 only. Nobody is active in every hour.
    assert_eq!(results[0].1.relation.len(), 0);

    // Exactly one supplementary join (Example 3.4).
    let plan = explain_gmdj(&query, &catalog, false).unwrap();
    assert_eq!(plan.matches("Join").count(), 1, "{plan}");
}

/// Footnote 2 — `B.x >all R.y` is NOT equivalent to `B.x > max(R.y)` when
/// the correlated range is empty: ALL is true, the aggregate comparison is
/// unknown.
#[test]
fn footnote_2_all_vs_max() {
    let b = RelationBuilder::new("B")
        .column("x", DataType::Int)
        .column("k", DataType::Int)
        .row(vec![5.into(), 1.into()])
        .build()
        .unwrap();
    let r = RelationBuilder::new("R")
        .column("y", DataType::Int)
        .column("k", DataType::Int)
        // No rows with k = 1: the correlated range is empty.
        .row(vec![100.into(), 2.into()])
        .build()
        .unwrap();
    let catalog = MemoryCatalog::new().with("B", b).with("R", r);

    let all_query =
        QueryExpr::table("B", "B").select(NestedPredicate::Subquery(SubqueryPred::Quantified {
            left: col("B.x"),
            op: CmpOp::Gt,
            quantifier: gmdj_algebra::ast::Quantifier::All,
            query: Box::new(
                QueryExpr::table("R", "R")
                    .select_flat(col("R.k").eq(col("B.k")))
                    .project(vec![ColumnRef::parse("R.y")]),
            ),
        }));
    let max_query =
        QueryExpr::table("B", "B").select(NestedPredicate::Subquery(SubqueryPred::Cmp {
            left: col("B.x"),
            op: CmpOp::Gt,
            query: Box::new(
                QueryExpr::table("R", "R")
                    .select_flat(col("R.k").eq(col("B.k")))
                    .agg_project(NamedAgg::new(
                        gmdj_relation::agg::AggFunc::Max,
                        col("R.y"),
                        "m",
                    )),
            ),
        }));
    for strat in full_lineup() {
        let all = gmdj_engine::strategy::run(&all_query, &catalog, strat).unwrap();
        let max = gmdj_engine::strategy::run(&max_query, &catalog, strat).unwrap();
        assert_eq!(
            all.relation.len(),
            1,
            "{strat:?}: ALL over empty range is true"
        );
        assert_eq!(max.relation.len(), 0, "{strat:?}: > max(∅) is unknown");
    }
}

/// The documented divergence of Table 1's scalar-comparison rule: SQL
/// raises a cardinality error when the scalar subquery returns more than
/// one row, while the count-based translation (σ[cnt = 1]) silently drops
/// the tuple — the paper notes "handling such run-time exceptions is
/// beyond the scope of this paper".
#[test]
fn scalar_cardinality_violation_divergence_is_as_documented() {
    let b = RelationBuilder::new("B")
        .column("x", DataType::Int)
        .row(vec![0.into()])
        .build()
        .unwrap();
    let r = RelationBuilder::new("R")
        .column("y", DataType::Int)
        .row(vec![1.into()])
        .row(vec![2.into()])
        .build()
        .unwrap();
    let catalog = MemoryCatalog::new().with("B", b).with("R", r);
    let q = QueryExpr::table("B", "B").select(NestedPredicate::Subquery(SubqueryPred::Cmp {
        left: col("B.x"),
        op: CmpOp::Lt,
        query: Box::new(QueryExpr::table("R", "R").project(vec![ColumnRef::parse("R.y")])),
    }));
    // SQL semantics (reference engine): run-time cardinality error.
    let err = gmdj_engine::strategy::run(&q, &catalog, Strategy::NaiveNestedLoop).unwrap_err();
    assert!(matches!(
        err,
        gmdj_relation::error::Error::CardinalityViolation { .. }
    ));
    // Count-based translation: σ[cnt = 1] quietly rejects the tuple
    // (cnt = 2 matching rows).
    let gmdj = gmdj_engine::strategy::run(&q, &catalog, Strategy::GmdjOptimized).unwrap();
    assert_eq!(gmdj.relation.len(), 0);
    // When the subquery is single-row, all strategies agree.
    let r1 = RelationBuilder::new("R")
        .column("y", DataType::Int)
        .row(vec![1.into()])
        .build()
        .unwrap();
    let catalog1 = MemoryCatalog::new()
        .with(
            "B",
            RelationBuilder::new("B")
                .column("x", DataType::Int)
                .row(vec![0.into()])
                .build()
                .unwrap(),
        )
        .with("R", r1);
    let results = run_all_agree(&q, &catalog1, &full_lineup()).unwrap();
    assert_eq!(results[0].1.relation.len(), 1); // 0 < 1
}

/// The where-clause-truncation behaviour: a subquery predicate evaluating
/// to unknown discards the tuple in every strategy.
#[test]
fn null_poisoned_not_in_all_strategies() {
    let b = RelationBuilder::new("B")
        .column("x", DataType::Int)
        .row(vec![7.into()])
        .build()
        .unwrap();
    let r = RelationBuilder::new("R")
        .column("y", DataType::Int)
        .row(vec![1.into()])
        .row(vec![Value::Null])
        .build()
        .unwrap();
    let catalog = MemoryCatalog::new().with("B", b).with("R", r);
    let q = QueryExpr::table("B", "B").select(NestedPredicate::Subquery(SubqueryPred::In {
        left: col("B.x"),
        query: Box::new(QueryExpr::table("R", "R").project(vec![ColumnRef::parse("R.y")])),
        negated: true,
    }));
    let results = run_all_agree(&q, &catalog, &full_lineup()).unwrap();
    assert_eq!(results[0].1.relation.len(), 0);
}

/// Multiset semantics: duplicate outer tuples survive subquery selections
/// in duplicate.
#[test]
fn duplicates_preserved_through_subqueries() {
    let b = RelationBuilder::new("B")
        .column("x", DataType::Int)
        .row(vec![1.into()])
        .row(vec![1.into()])
        .row(vec![2.into()])
        .build()
        .unwrap();
    let r = RelationBuilder::new("R")
        .column("y", DataType::Int)
        .row(vec![1.into()])
        .build()
        .unwrap();
    let catalog = MemoryCatalog::new().with("B", b).with("R", r);
    let sub = QueryExpr::table("R", "R").select_flat(col("R.y").eq(col("B.x")));
    let q = QueryExpr::table("B", "B").select(exists(sub));
    let results = run_all_agree(&q, &catalog, &full_lineup()).unwrap();
    assert_eq!(results[0].1.relation.len(), 2);
}

/// π[HourDescription, sum1/sum2]σ[cnt1 = cnt2] — the `having` selection
/// form of Example 2.1's header (cnt1 = cnt2 filters on count equality).
#[test]
fn having_selection_over_gmdj_output() {
    use gmdj_core::eval::{eval_gmdj, EvalStats, GmdjOptions};
    use gmdj_core::exec::TableProvider;
    let catalog = figure_1_catalog();
    let in_hour = col("F.StartTime")
        .ge(col("H.StartInterval"))
        .and(col("F.StartTime").lt(col("H.EndInterval")));
    let spec = GmdjSpec::new(vec![
        AggBlock::count(
            in_hour.clone().and(col("F.Protocol").eq(lit("HTTP"))),
            "cnt1",
        ),
        AggBlock::count(in_hour, "cnt2"),
    ]);
    let mut stats = EvalStats::default();
    let out = eval_gmdj(
        &catalog.table("Hours").unwrap().renamed("H"),
        &catalog.table("Flow").unwrap().renamed("F"),
        &spec,
        &GmdjOptions::default(),
        &mut stats,
    )
    .unwrap();
    let only_http_hours = ops::select(&out, &col("cnt1").eq(col("cnt2"))).unwrap();
    // Hour 1 is all-HTTP in Figure 1's data.
    assert_eq!(only_http_hours.len(), 1);
    assert_eq!(only_http_hours.rows()[0][0], Value::Int(1));
}
