//! Offline stand-in for the `proptest` crate.
//!
//! The workspace builds with no network access, so the real `proptest`
//! cannot be fetched from a registry. The property tests in this repo use
//! a well-defined slice of its API — `Strategy` with `prop_map` /
//! `prop_recursive`, `Just`, integer-range and tuple strategies, a
//! char-class regex subset for `&str` strategies, `prop_oneof!`,
//! `proptest::collection::vec`, `proptest::bool::ANY`, `any::<T>()`, and
//! the `proptest!` / `prop_assert!` / `prop_assert_eq!` macros — which
//! this crate reimplements as a plain generate-and-check harness.
//!
//! Differences from the real crate, deliberate and documented:
//!
//! * **No shrinking.** A failing case reports its inputs (`Debug`) and
//!   panics immediately. The generators in this repo draw small values
//!   (≤16-row relations), so raw counterexamples stay readable.
//! * **Deterministic seeding.** Each test derives its RNG seed from its
//!   fully-qualified name, so runs are reproducible without a
//!   `proptest-regressions` directory.
//! * **Regex strategies** support exactly the subset the tests use:
//!   concatenations of `[class]{m,n}` / `[class]` / literal elements.

use std::rc::Rc;

/// Deterministic generator state for test-case synthesis.
pub mod rng {
    /// SplitMix64 — tiny, seedable, and plenty for test generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a stable string (the fully-qualified test name).
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the name gives a stable per-test stream.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)` via widening multiply.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "cannot draw below 0");
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }
}

/// Core strategy trait plus the combinators the tests use.
pub mod strategy {
    use super::rng::TestRng;
    use super::Rc;
    use std::fmt;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of one type.
    pub trait Strategy {
        type Value: fmt::Debug;

        /// Draw one value.
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            U: fmt::Debug,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Build a recursive strategy: `self` generates leaves; `branch`
        /// wraps an inner strategy into composites. `depth` bounds the
        /// nesting; the size/branch hints are accepted for API
        /// compatibility but unused (generation is depth-bounded, not
        /// size-tuned).
        fn prop_recursive<F, S>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            branch: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
            S: Strategy<Value = Self::Value> + 'static,
        {
            let mut strat = self.boxed();
            for _ in 0..depth {
                let deeper = branch(strat.clone()).boxed();
                strat = Union::new(vec![(1, strat), (1, deeper)]).boxed();
            }
            strat
        }

        /// Type-erase behind a cloneable handle.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// Cloneable type-erased strategy handle.
    pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            self.0.gen_value(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + fmt::Debug>(pub T);

    impl<T: Clone + fmt::Debug> Strategy for Just<T> {
        type Value = T;
        fn gen_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` adapter.
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Clone, F: Clone> Clone for Map<S, F> {
        fn clone(&self) -> Self {
            Map {
                inner: self.inner.clone(),
                f: self.f.clone(),
            }
        }
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        U: fmt::Debug,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn gen_value(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.gen_value(rng))
        }
    }

    /// Weighted choice between same-valued strategies — `prop_oneof!`.
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                arms: self.arms.clone(),
                total: self.total,
            }
        }
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            let total = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! needs positive total weight");
            Union { arms, total }
        }
    }

    impl<T: fmt::Debug> Strategy for Union<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, arm) in &self.arms {
                if pick < *w as u64 {
                    return arm.gen_value(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weighted pick out of range")
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.gen_value(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);

    /// One parsed element of the supported regex subset.
    enum RegexElement {
        Literal(char),
        Class {
            chars: Vec<char>,
            min: usize,
            max: usize,
        },
    }

    fn parse_regex_subset(pattern: &str) -> Vec<RegexElement> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut elements = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            if chars[i] == '[' {
                let close = chars[i + 1..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| p + i + 1)
                    .unwrap_or_else(|| panic!("unclosed [ in regex strategy {pattern:?}"));
                let mut members = Vec::new();
                let body = &chars[i + 1..close];
                let mut j = 0;
                while j < body.len() {
                    // `a-z` is a range unless the `-` is first or last.
                    if j + 2 < body.len() && body[j + 1] == '-' {
                        let (lo, hi) = (body[j] as u32, body[j + 2] as u32);
                        assert!(lo <= hi, "inverted range in regex strategy {pattern:?}");
                        for c in lo..=hi {
                            members.push(char::from_u32(c).unwrap());
                        }
                        j += 3;
                    } else {
                        members.push(body[j]);
                        j += 1;
                    }
                }
                assert!(
                    !members.is_empty(),
                    "empty class in regex strategy {pattern:?}"
                );
                i = close + 1;
                let (min, max) = parse_quantifier(&chars, &mut i, pattern);
                elements.push(RegexElement::Class {
                    chars: members,
                    min,
                    max,
                });
            } else {
                let c = chars[i];
                i += 1;
                let (min, max) = parse_quantifier(&chars, &mut i, pattern);
                if (min, max) == (1, 1) {
                    elements.push(RegexElement::Literal(c));
                } else {
                    elements.push(RegexElement::Class {
                        chars: vec![c],
                        min,
                        max,
                    });
                }
            }
        }
        elements
    }

    fn parse_quantifier(chars: &[char], i: &mut usize, pattern: &str) -> (usize, usize) {
        if *i >= chars.len() || chars[*i] != '{' {
            return (1, 1);
        }
        let close = chars[*i + 1..]
            .iter()
            .position(|&c| c == '}')
            .map(|p| p + *i + 1)
            .unwrap_or_else(|| panic!("unclosed {{ in regex strategy {pattern:?}"));
        let body: String = chars[*i + 1..close].iter().collect();
        *i = close + 1;
        let parse = |s: &str| -> usize {
            s.trim()
                .parse()
                .unwrap_or_else(|_| panic!("bad quantifier in {pattern:?}"))
        };
        match body.split_once(',') {
            Some((lo, hi)) => (parse(lo), parse(hi)),
            None => {
                let n = parse(&body);
                (n, n)
            }
        }
    }

    /// `&str` as a strategy: the pattern is a regex in the supported
    /// subset (concatenated literals and `[class]{m,n}` elements).
    impl Strategy for &'static str {
        type Value = String;
        fn gen_value(&self, rng: &mut TestRng) -> String {
            let elements = parse_regex_subset(self);
            let mut out = String::new();
            for e in &elements {
                match e {
                    RegexElement::Literal(c) => out.push(*c),
                    RegexElement::Class { chars, min, max } => {
                        let n = *min as u64 + rng.below((max - min) as u64 + 1);
                        for _ in 0..n {
                            out.push(chars[rng.below(chars.len() as u64) as usize]);
                        }
                    }
                }
            }
            out
        }
    }

    /// Types with a canonical whole-domain strategy — `any::<T>()`.
    pub trait Arbitrary: Sized + fmt::Debug {
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy form of [`Arbitrary`].
    #[derive(Debug, Clone, Copy)]
    pub struct AnyStrategy<A>(std::marker::PhantomData<A>);

    impl<A: Arbitrary> Strategy for AnyStrategy<A> {
        type Value = A;
        fn gen_value(&self, rng: &mut TestRng) -> A {
            A::arbitrary_value(rng)
        }
    }

    /// The whole domain of `T`: `any::<i64>()`.
    pub fn any<A: Arbitrary>() -> AnyStrategy<A> {
        AnyStrategy(std::marker::PhantomData)
    }
}

/// Collection strategies: `proptest::collection::vec`.
pub mod collection {
    use super::rng::TestRng;
    use super::strategy::Strategy;
    use std::ops::{Range, RangeInclusive};

    /// Length specification accepted by [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max: usize, // inclusive
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    /// `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64 + 1;
            let n = self.size.min + rng.below(span) as usize;
            (0..n).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

/// Option strategies: `proptest::option::of`.
pub mod option {
    use super::rng::TestRng;
    use super::strategy::Strategy;

    /// `Option<S::Value>`, `None` one time in four (the real crate's
    /// default `Probability` is 0.5; the exact weight is unobservable to
    /// deterministic callers).
    pub struct OptionStrategy<S> {
        inner: S,
    }

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.gen_value(rng))
            }
        }
    }
}

/// Boolean strategies: `proptest::bool::ANY`.
pub mod bool {
    use super::rng::TestRng;
    use super::strategy::Strategy;

    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    /// Either boolean, uniformly.
    pub const ANY: BoolAny = BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn gen_value(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Runner configuration and failure type used by the `proptest!` macro.
pub mod test_runner {
    use std::fmt;

    /// Subset of the real crate's config: only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
        /// Accepted for drop-in compatibility with the real crate; this
        /// stub never shrinks, so the bound is ignored.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 0,
            }
        }
    }

    /// A failed property case (no shrinking: the message is terminal).
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        Fail(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
            }
        }
    }
}

/// Everything the tests import via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

pub use strategy::any;

/// Mark the current case failed unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {{
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    }};
}

/// Mark the current case failed unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Mark the current case failed unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            l
        );
    }};
}

/// Weighted (`w => strat`) or uniform choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Define property tests: draws each `name in strategy` binding, runs the
/// body `cases` times, and panics with the generated inputs on failure.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::rng::TestRng::deterministic(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for case in 0..cfg.cases {
                $(
                    let $arg =
                        $crate::strategy::Strategy::gen_value(&($strat), &mut rng);
                )+
                // Render the inputs up front: the body may consume them.
                let rendered_inputs = [
                    $(format!("  {} = {:?}", stringify!($arg), &$arg)),+
                ]
                .join("\n");
                let outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(
                        || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                            $body
                            ::std::result::Result::Ok(())
                        },
                    ),
                );
                match outcome {
                    Ok(Ok(())) => {}
                    Ok(Err(e)) => panic!(
                        "property failed at case {}/{}: {}\ninputs:\n{}",
                        case + 1,
                        cfg.cases,
                        e,
                        rendered_inputs
                    ),
                    Err(panic_payload) => {
                        eprintln!(
                            "property panicked at case {}/{}\ninputs:\n{}",
                            case + 1,
                            cfg.cases,
                            rendered_inputs
                        );
                        ::std::panic::resume_unwind(panic_payload);
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_just_generate_in_bounds() {
        let mut rng = crate::rng::TestRng::deterministic("t1");
        let s = prop_oneof![2 => 0i64..5, 1 => Just(99i64)];
        let mut saw_range = false;
        let mut saw_just = false;
        for _ in 0..200 {
            match s.gen_value(&mut rng) {
                v @ 0..=4 => {
                    saw_range = true;
                    assert!((0..5).contains(&v));
                }
                99 => saw_just = true,
                v => panic!("out-of-domain value {v}"),
            }
        }
        assert!(saw_range && saw_just);
    }

    #[test]
    fn regex_subset_matches_shape() {
        let mut rng = crate::rng::TestRng::deterministic("t2");
        for _ in 0..200 {
            let s = "[a-z][a-z0-9_-]{0,11}".gen_value(&mut rng);
            assert!(!s.is_empty() && s.len() <= 12, "bad length: {s:?}");
            let mut chars = s.chars();
            assert!(chars.next().unwrap().is_ascii_lowercase());
            assert!(
                chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '-')
            );
        }
    }

    #[test]
    fn vec_strategy_respects_length() {
        let mut rng = crate::rng::TestRng::deterministic("t3");
        for _ in 0..100 {
            let v = crate::collection::vec((0i64..3, 0i64..3), 1..4).gen_value(&mut rng);
            assert!((1..4).contains(&v.len()));
        }
    }

    #[test]
    fn recursive_strategies_terminate_and_vary() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(i64),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(v) => u32::from(*v < 0),
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = (0i64..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 12, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            });
        let mut rng = crate::rng::TestRng::deterministic("t4");
        let mut max_depth = 0;
        for _ in 0..300 {
            let t = strat.gen_value(&mut rng);
            let d = depth(&t);
            assert!(d <= 3, "depth bound violated: {d}");
            max_depth = max_depth.max(d);
        }
        assert!(
            max_depth >= 2,
            "recursion never fired (max depth {max_depth})"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn macro_smoke(a in 0i64..100, b in 0i64..100, flip in crate::bool::ANY) {
            let sum = if flip { a + b } else { a.wrapping_add(b) };
            prop_assert_eq!(sum, a + b);
            prop_assert!(sum >= a.min(b));
        }
    }
}
