//! Offline stand-in for the `rand` crate.
//!
//! The workspace builds with no network access, so the real `rand` cannot
//! be fetched from a registry. Data generation (`gmdj-datagen`) only needs
//! a small, deterministic slice of the API: `SmallRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen_range` over integer ranges, and
//! `Rng::gen_ratio`. This crate provides exactly that surface on top of
//! xoshiro256++ (the same core generator the real `SmallRng` uses on
//! 64-bit targets), seeded via SplitMix64.
//!
//! Streams are deterministic per seed but are **not** guaranteed to match
//! the real crate's byte-for-byte: everything downstream only relies on
//! determinism and distribution quality, never on specific draws.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seed material.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types with uniform sampling over a range. Mirroring the real crate's
/// trait layout matters: the blanket `SampleRange` impls below are what
/// let type inference flow from `gen_range(0..n)` to `T`.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform draw in `[lo, hi)` (exclusive) or `[lo, hi]` (inclusive).
    fn sample_range(rng: &mut dyn RngCore, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut dyn RngCore, lo: $t, hi: $t, inclusive: bool) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                assert!(span > 0, "cannot sample empty range");
                let off = ((rng.next_u64() as u128).wrapping_mul(span) >> 64) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

int_sample_uniform!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleUniform for f64 {
    fn sample_range(rng: &mut dyn RngCore, lo: f64, hi: f64, _inclusive: bool) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }
}

/// A sampleable range of `T` — the argument of [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        T::sample_range(rng, *self.start(), *self.end(), true)
    }
}

/// User-facing sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool
    where
        Self: Sized,
    {
        assert!(denominator > 0 && numerator <= denominator);
        self.gen_range(0..denominator) < numerator
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p));
        self.gen_range(0.0..1.0) < p
    }
}

impl<T: RngCore> Rng for T {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++, seeded via SplitMix64 — small, fast, and good enough
    /// for synthetic data generation.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = (self.s[0].wrapping_add(self.s[3]))
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias kept for drop-in compatibility with `rand::rngs::StdRng`.
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000i64), b.gen_range(0..1_000_000i64));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(5..17i64);
            assert!((5..17).contains(&v));
            let w = rng.gen_range(3..=9usize);
            assert!((3..=9).contains(&w));
        }
    }

    #[test]
    fn ranges_cover_all_values() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "every bucket should be hit");
    }

    #[test]
    fn gen_ratio_is_roughly_calibrated() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_ratio(18, 100)).count();
        assert!((1_500..2_100).contains(&hits), "18% of 10k, got {hits}");
    }
}
