//! Offline stand-in for the `criterion` crate.
//!
//! The workspace builds with no network access, so the real `criterion`
//! cannot be fetched. The bench targets only use a narrow slice of its
//! API — groups, `BenchmarkId`, `bench_function` / `bench_with_input`,
//! `Bencher::iter`, and the `criterion_group!` / `criterion_main!`
//! macros — which this crate reimplements as a plain wall-clock harness.
//! Statistical analysis (outlier detection, regression fitting, HTML
//! reports) is intentionally absent: the numbers that matter for the
//! paper reproduction are produced by the `repro` binary, not by
//! criterion; the bench targets exist for relative comparisons and CI
//! smoke coverage (`--quick`).

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_id: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_id}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything `bench_function` accepts as an id.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// Hands the measured closure to the timing loop.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    iters_per_sample: u64,
    sample_count: usize,
}

impl Bencher<'_> {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed() / self.iters_per_sample.max(1) as u32;
            self.samples.push(elapsed);
        }
    }
}

/// Identity function that defeats constant-folding of bench results.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level harness state, shared by every group.
#[derive(Default)]
pub struct Criterion {
    quick: bool,
}

impl Criterion {
    /// Build from CLI args. Only `--quick` changes behavior; everything
    /// else (`--bench`, filters) is accepted and ignored.
    pub fn from_args() -> Self {
        Criterion {
            quick: std::env::args().any(|a| a == "--quick"),
        }
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F)
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut group = self.benchmark_group("");
        group.bench_function(id, f);
        group.finish();
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the wall-clock harness sizes runs
    /// by sample count only.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; warm-up is a single untimed run.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F)
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into_benchmark_id();
        let mut samples = Vec::new();
        let sample_count = if self.criterion.quick {
            1
        } else {
            self.sample_size
        };
        let mut bencher = Bencher {
            samples: &mut samples,
            iters_per_sample: 1,
            sample_count,
        };
        f(&mut bencher);
        report(&self.name, &id.id, &samples);
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        self.bench_function(id, |b| f(b, input));
    }

    pub fn finish(self) {}
}

fn report(group: &str, id: &str, samples: &[Duration]) {
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    if samples.is_empty() {
        println!("{label:<56} (no samples)");
        return;
    }
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort();
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let max = sorted[sorted.len() - 1];
    let mut line = String::new();
    let _ = write!(
        line,
        "{label:<56} time: [{} {} {}]",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(max)
    );
    println!("{line}");
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Bundle bench functions into a group runner, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Entry point running every group, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion { quick: true };
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut runs = 0u64;
        group.bench_function(BenchmarkId::new("inc", 1), |b| b.iter(|| runs += 1));
        group.finish();
        assert!(runs >= 1);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion { quick: true };
        let mut group = c.benchmark_group("smoke");
        let mut seen = 0;
        group.bench_with_input(BenchmarkId::new("id", 7), &7, |b, &i| b.iter(|| seen = i));
        group.finish();
        assert_eq!(seen, 7);
    }
}
