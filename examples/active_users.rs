//! Active users — Example 3.3 of the paper: a doubly-nested NOT EXISTS
//! with a *non-neighboring* correlation predicate.
//!
//! "We want to know the user accounts that have been active (i.e., have
//! been the source of traffic) in each hour" — universal quantification
//! via double existential negation. The innermost Flow block references
//! `U.IPAddress`, two levels up; Theorem 3.3/3.4's push-down introduces
//! exactly one supplementary join (Example 3.4), visible in the EXPLAIN
//! output below.
//!
//! ```text
//! cargo run --release --example active_users
//! ```

use gmdj_algebra::ast::{not_exists, NestedPredicate, QueryExpr};
use gmdj_engine::strategy::{explain_gmdj, run, Strategy};
use gmdj_relation::expr::{col, lit};

use gmdj_datagen::netflow::{NetflowConfig, NetflowData};

/// Example 3.3:
/// σ[∄(σ[θ_H ∧ (∄σ[θ_F](Flow→F))](Hours→H))](User→U)
fn example_3_3(from_hour: i64) -> QueryExpr {
    let theta_f = col("F.StartTime")
        .ge(col("H.StartInterval"))
        .and(col("F.StartTime").lt(col("H.EndInterval")))
        .and(col("F.SourceIP").eq(col("U.IPAddress"))); // non-neighboring!
    let inner_flow = QueryExpr::table("Flow", "F").select_flat(theta_f);
    let theta_h = col("H.StartInterval").ge(lit(from_hour * 3600));
    let hours = QueryExpr::table("Hours", "H")
        .select(NestedPredicate::Atom(theta_h).and(not_exists(inner_flow)));
    QueryExpr::table("User", "U").select(not_exists(hours))
}

fn main() {
    let data = NetflowData::generate(&NetflowConfig {
        hours: 8,
        flows: 800,
        users: 40,
        source_ips: 48,
        seed: 11,
    });
    let catalog = data.into_catalog();
    let query = example_3_3(2);

    println!("Example 3.3 — users active in every hour from hour 2 on\n");
    println!("Nested query expression:\n  {query}\n");

    let plan = explain_gmdj(&query, &catalog, true).expect("translate");
    println!("Translated GMDJ expression (note the single supplementary join");
    println!("introduced by the non-neighboring push-down, Example 3.4):\n");
    println!("{plan}");

    let mut reference_rows = None;
    for strat in [
        Strategy::NaiveNestedLoop,
        Strategy::NativeSmart,
        Strategy::GmdjBasic,
        Strategy::GmdjOptimized,
    ] {
        let result = run(&query, &catalog, strat).expect("run");
        println!(
            "{:<10} {:>9.1} ms   {:>12} work units   {} always-active users",
            strat.label(),
            result.wall.as_secs_f64() * 1e3,
            result.stats.work(),
            result.relation.len()
        );
        match &reference_rows {
            None => reference_rows = Some(result.relation),
            Some(r) => assert!(
                r.multiset_eq(&result.relation),
                "strategies disagree — this would be a bug"
            ),
        }
    }

    let rel = reference_rows.expect("at least one strategy ran");
    println!("\nAlways-active accounts:");
    for row in rel.sorted_rows().iter().take(10) {
        println!("  {:<10} ({}, {})", row[0], row[1], row[2]);
    }
    if rel.is_empty() {
        println!("  (none at this traffic density — rerun with more flows)");
    }
}
