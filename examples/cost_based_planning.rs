//! Cost-based plan selection — the paper's Section 6 proposal in action.
//!
//! "Because the GMDJ evaluation has a well-defined cost, it is easy to
//! incorporate the GMDJ algorithm … into a cost-based framework." This
//! example translates a three-subquery query, enumerates the rewrite
//! alternatives (chained / hoisted / coalesced / coalesced + completion),
//! prints the cost model's estimate for each, then *measures* each plan
//! and shows that the model's ranking matches reality.
//!
//! ```text
//! cargo run --release --example cost_based_planning
//! ```

use std::time::Instant;

use gmdj_algebra::ast::{exists, not_exists, QueryExpr};
use gmdj_core::cost::{cost_based_optimize, estimate};
use gmdj_core::exec::{execute, ExecContext};
use gmdj_core::optimize::{optimize_with, OptFlags};
use gmdj_core::translate::subquery_to_gmdj;
use gmdj_datagen::netflow::{NetflowConfig, NetflowData, HOT_DEST_IPS};
use gmdj_relation::expr::{col, lit};
use gmdj_relation::schema::ColumnRef;

fn main() {
    let data = NetflowData::generate(&NetflowConfig {
        hours: 24,
        flows: 60_000,
        users: 60,
        source_ips: 80,
        seed: 3,
    });
    let catalog = data.into_catalog();

    // Example 2.3's base-values query: three subqueries over Flow.
    let flow_to = |q: &str, ip: &str| {
        QueryExpr::table("Flow", q).select_flat(
            col("F0.SourceIP")
                .eq(col(&format!("{q}.SourceIP")))
                .and(col(&format!("{q}.DestIP")).eq(lit(ip))),
        )
    };
    let query = QueryExpr::table("Flow", "F0")
        .project_distinct(vec![ColumnRef::parse("F0.SourceIP")])
        .select(
            not_exists(flow_to("F1", HOT_DEST_IPS[0]))
                .and(exists(flow_to("F2", HOT_DEST_IPS[1])))
                .and(not_exists(flow_to("F3", HOT_DEST_IPS[2]))),
        );
    let translated = subquery_to_gmdj(&query, &catalog).expect("translate");

    println!("Plan alternatives for Example 2.3's base-values query");
    println!("({} flows; estimates from gmdj_core::cost):\n", 60_000);
    println!(
        "{:<24} {:>12} {:>12} {:>12}   {:>10} {:>12}",
        "alternative", "est. io", "est. cpu", "est. total", "actual ms", "actual work"
    );

    let alternatives = [
        (
            "chained (as translated)",
            OptFlags {
                hoist: false,
                coalesce: false,
                completion: false,
            },
        ),
        (
            "hoisted",
            OptFlags {
                hoist: true,
                coalesce: false,
                completion: false,
            },
        ),
        (
            "coalesced",
            OptFlags {
                hoist: true,
                coalesce: true,
                completion: false,
            },
        ),
        (
            "coalesced+completion",
            OptFlags {
                hoist: true,
                coalesce: true,
                completion: true,
            },
        ),
    ];

    let mut measured: Vec<(f64, f64)> = Vec::new(); // (est total, actual ms)
    let mut baseline = None;
    for (name, flags) in alternatives {
        let plan = optimize_with(&translated, &flags);
        let est = estimate(&plan, &catalog).expect("estimate");
        let mut ctx = ExecContext::new();
        let start = Instant::now();
        let rel = execute(&plan, &catalog, &mut ctx).expect("execute");
        let ms = start.elapsed().as_secs_f64() * 1e3;
        println!(
            "{:<24} {:>12.0} {:>12.0} {:>12.0}   {:>10.1} {:>12}",
            name,
            est.cost.io,
            est.cost.cpu,
            est.cost.total(),
            ms,
            ctx.stats.work()
        );
        measured.push((est.cost.total(), ms));
        match &baseline {
            None => baseline = Some(rel),
            Some(b) => assert!(b.multiset_eq(&rel), "alternatives must agree"),
        }
    }

    // The model must rank the coalesced plans below the chained one.
    assert!(
        measured.last().unwrap().0 < measured.first().unwrap().0,
        "cost model should prefer the optimized plan"
    );

    let (best, est) = cost_based_optimize(&translated, &catalog).expect("cost-based");
    println!(
        "\ncost_based_optimize picked a plan with {} GMDJ operator(s), \
         estimated total {:.0}:",
        best.gmdj_count(),
        est.cost.total()
    );
    println!("{best}");
}
