//! Quickstart — Example 2.1 of the paper, end to end.
//!
//! "On an hourly basis, what fraction of the traffic is due to web
//! traffic?" — a single GMDJ over the Hours dimension and the Flow fact
//! table, reproducing Figure 1's input and output tables exactly, then
//! the same query on a generated warehouse.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use gmdj_core::eval::{eval_gmdj, EvalStats, GmdjOptions};
use gmdj_core::spec::{AggBlock, GmdjSpec};
use gmdj_datagen::netflow::{NetflowConfig, NetflowData};
use gmdj_relation::agg::NamedAgg;
use gmdj_relation::expr::{col, lit};
use gmdj_relation::ops;
use gmdj_relation::relation::{Relation, RelationBuilder};
use gmdj_relation::schema::DataType;

fn figure_1_hours() -> Relation {
    RelationBuilder::new("H")
        .column("HourDsc", DataType::Int)
        .column("StartInterval", DataType::Int)
        .column("EndInterval", DataType::Int)
        .row(vec![1.into(), 0.into(), 60.into()])
        .row(vec![2.into(), 61.into(), 120.into()])
        .row(vec![3.into(), 121.into(), 180.into()])
        .build()
        .unwrap()
}

fn figure_1_flows() -> Relation {
    RelationBuilder::new("F")
        .column("StartTime", DataType::Int)
        .column("Protocol", DataType::Str)
        .column("NumBytes", DataType::Int)
        .row(vec![43.into(), "HTTP".into(), 12.into()])
        .row(vec![86.into(), "HTTP".into(), 36.into()])
        .row(vec![99.into(), "FTP".into(), 48.into()])
        .row(vec![132.into(), "HTTP".into(), 24.into()])
        .row(vec![156.into(), "HTTP".into(), 24.into()])
        .row(vec![161.into(), "FTP".into(), 48.into()])
        .build()
        .unwrap()
}

/// The GMDJ of Example 2.1: two aggregate blocks over the same hour
/// bucketing, one restricted to HTTP.
fn example_2_1_spec() -> GmdjSpec {
    let in_hour = col("F.StartTime")
        .ge(col("H.StartInterval"))
        .and(col("F.StartTime").lt(col("H.EndInterval")));
    GmdjSpec::new(vec![
        AggBlock::new(
            in_hour.clone().and(col("F.Protocol").eq(lit("HTTP"))),
            vec![NamedAgg::sum(col("F.NumBytes"), "sum1")],
        ),
        AggBlock::new(in_hour, vec![NamedAgg::sum(col("F.NumBytes"), "sum2")]),
    ])
}

fn main() {
    // ---- Figure 1: the paper's worked example -------------------------
    let hours = figure_1_hours();
    let flows = figure_1_flows();
    println!("Input table Hours:\n{hours}");
    println!("Input table Flow:\n{flows}");

    let mut stats = EvalStats::default();
    let gmdj = eval_gmdj(
        &hours,
        &flows,
        &example_2_1_spec(),
        &GmdjOptions::default(),
        &mut stats,
    )
    .expect("GMDJ evaluation");
    println!("GMDJ output (Figure 1, sums left unreduced):\n{gmdj}");

    let fractions = ops::project(
        &gmdj,
        &[
            (col("H.HourDsc"), Some("HourDsc".into())),
            (col("sum1").div(col("sum2")), Some("webFraction".into())),
        ],
    )
    .expect("projection");
    println!("π[HourDescription, sum1/sum2]:\n{fractions}");
    println!(
        "Detail tuples scanned: {} (one pass over Flow, {} partitions)\n",
        stats.detail_scanned, stats.partitions
    );

    // ---- The same query on a generated warehouse ----------------------
    let data = NetflowData::generate(&NetflowConfig::tiny(42));
    println!(
        "Generated warehouse: {} flows over {} hours",
        data.flow.len(),
        data.hours.len()
    );
    let mut stats = EvalStats::default();
    let out = eval_gmdj(
        &data.hours.renamed("H"),
        &data.flow.renamed("F"),
        &example_2_1_spec(),
        &GmdjOptions::default(),
        &mut stats,
    )
    .expect("GMDJ evaluation");
    let fractions = ops::project(
        &out,
        &[
            (col("H.HourDsc"), Some("hour".into())),
            (col("sum1").div(col("sum2")), Some("webFraction".into())),
        ],
    )
    .expect("projection");
    let rows = fractions.sorted_rows();
    println!("First hours of the generated day:");
    for row in rows.iter().take(6) {
        println!("  hour {:>2}: web fraction {}", row[0], row[1]);
    }
    println!(
        "\nSingle scan of the detail table: {} tuples, {} probe candidates.",
        stats.detail_scanned, stats.probe_candidates
    );
}
