//! TPC-R-flavored analytics through the SQL front end.
//!
//! Three ad-hoc subquery queries over the generated TPC-R-style database,
//! parsed from SQL, lowered to the nested algebra, and evaluated under
//! every strategy — the full pipeline a downstream user of this library
//! would run.
//!
//! ```text
//! cargo run --release --example tpcr_analytics
//! ```

use gmdj_datagen::tpcr::{TpcrConfig, TpcrData};
use gmdj_engine::strategy::{run, Strategy};
use gmdj_sql::parse_query;

fn main() {
    let cfg = TpcrConfig {
        customers: 1_000,
        orders: 3_000,
        lineitems: 30_000,
        parts: 1_500,
        suppliers: 100,
        seed: 2026,
    };
    println!(
        "TPC-R-style database: {} customers, {} orders, {} lineitems, {} parts\n",
        cfg.customers, cfg.orders, cfg.lineitems, cfg.parts
    );
    let catalog = TpcrData::generate(&cfg).into_catalog();

    let queries: &[(&str, &str)] = &[
        (
            "Q22-flavor — customers with balance above 9000 and no orders at all",
            "SELECT c.custkey, c.acctbal
             FROM customer c
             WHERE c.acctbal > 9000
               AND NOT EXISTS (SELECT * FROM orders o WHERE o.custkey = c.custkey)",
        ),
        (
            "Q17-flavor — lineitems far below their part's average quantity",
            "SELECT l.orderkey, l.partkey
             FROM lineitem l
             WHERE l.quantity * 5 <
                   (SELECT AVG(l2.quantity) FROM lineitem l2 WHERE l2.partkey = l.partkey)",
        ),
        (
            "universal — suppliers whose balance beats every supplier in nation 0",
            "SELECT s.suppkey
             FROM supplier s
             WHERE s.acctbal >= ALL
                   (SELECT s2.acctbal FROM supplier s2 WHERE s2.nationkey = 0)",
        ),
    ];

    for (title, sql) in queries {
        // The pure tuple-iteration baseline is quadratic in
        // outer × inner; include it only where the outer block is small.
        let strategies: &[Strategy] = if title.starts_with("Q17") {
            &[
                Strategy::NativeSmart,
                Strategy::JoinUnnest,
                Strategy::GmdjBasic,
                Strategy::GmdjOptimized,
            ]
        } else {
            &[
                Strategy::NaiveNestedLoop,
                Strategy::NativeSmart,
                Strategy::JoinUnnest,
                Strategy::GmdjBasic,
                Strategy::GmdjOptimized,
            ]
        };
        println!("── {title}");
        println!(
            "{}",
            sql.lines()
                .map(|l| format!("   {}\n", l.trim()))
                .collect::<String>()
        );
        let query = match parse_query(sql) {
            Ok(q) => q,
            Err(e) => {
                println!("   parse error: {e}");
                continue;
            }
        };
        let mut expected = None;
        for &strat in strategies {
            let result = run(&query, &catalog, strat).expect("run");
            println!(
                "   {:<10} {:>9.2} ms   {:>12} work units   {:>6} rows",
                strat.label(),
                result.wall.as_secs_f64() * 1e3,
                result.stats.work(),
                result.relation.len()
            );
            match &expected {
                None => expected = Some(result.relation),
                Some(r) => assert!(r.multiset_eq(&result.relation), "strategies disagree"),
            }
        }
        println!();
    }
}
