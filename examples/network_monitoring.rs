//! Network monitoring — Examples 2.2, 2.3 and 4.1 of the paper.
//!
//! * Example 2.2: hourly web-traffic fraction restricted to hours with
//!   traffic to a watched destination IP — an EXISTS subquery defining
//!   the base-values table of a GMDJ aggregation.
//! * Example 2.3: per-source traffic totals for sources matching a
//!   three-subquery profile (no flows to A, some to B, none to C).
//! * Example 4.1: the optimizer coalesces all of Example 2.3's subquery
//!   blocks and aggregation blocks into a single GMDJ — one scan of the
//!   Flow table computes everything.
//!
//! ```text
//! cargo run --release --example network_monitoring
//! ```

use gmdj_algebra::ast::{exists, not_exists, QueryExpr};
use gmdj_core::spec::{AggBlock, GmdjSpec};
use gmdj_datagen::netflow::{NetflowConfig, NetflowData, HOT_DEST_IPS};
use gmdj_engine::olap::{Aggregation, OlapQuery};
use gmdj_engine::strategy::Strategy;
use gmdj_relation::agg::NamedAgg;
use gmdj_relation::expr::{col, lit};
use gmdj_relation::schema::ColumnRef;

fn example_2_2(watched: &str) -> OlapQuery {
    // B = σ[∃ σ[F_I.DestIP = watched ∧ in-hour](Flow→FI)](Hours→H)
    let inner = QueryExpr::table("Flow", "FI").select_flat(
        col("FI.DestIP")
            .eq(lit(watched))
            .and(col("FI.StartTime").ge(col("H.StartInterval")))
            .and(col("FI.StartTime").lt(col("H.EndInterval"))),
    );
    let base = QueryExpr::table("Hours", "H").select(exists(inner));
    let in_hour = col("FO.StartTime")
        .ge(col("H.StartInterval"))
        .and(col("FO.StartTime").lt(col("H.EndInterval")));
    OlapQuery {
        base,
        aggregation: Some(Aggregation {
            detail: QueryExpr::table("Flow", "FO"),
            spec: GmdjSpec::new(vec![
                AggBlock::new(
                    in_hour.clone().and(col("FO.Protocol").eq(lit("HTTP"))),
                    vec![NamedAgg::sum(col("FO.NumBytes"), "sum1")],
                ),
                AggBlock::new(in_hour, vec![NamedAgg::sum(col("FO.NumBytes"), "sum2")]),
            ]),
            having: None,
        }),
        projection: vec![
            (col("H.HourDsc"), Some("hour".into())),
            (col("sum1").div(col("sum2")), Some("webFraction".into())),
        ],
    }
}

fn example_2_3() -> OlapQuery {
    // Sources with no flows to A, some to B, none to C.
    let flow_to = |q: &str, ip: &str| {
        QueryExpr::table("Flow", q).select_flat(
            col("F0.SourceIP")
                .eq(col(&format!("{q}.SourceIP")))
                .and(col(&format!("{q}.DestIP")).eq(lit(ip))),
        )
    };
    let base = QueryExpr::table("Flow", "F0")
        .project_distinct(vec![ColumnRef::parse("F0.SourceIP")])
        .select(
            not_exists(flow_to("F1", HOT_DEST_IPS[0]))
                .and(exists(flow_to("F2", HOT_DEST_IPS[1])))
                .and(not_exists(flow_to("F3", HOT_DEST_IPS[2]))),
        );
    OlapQuery {
        base,
        aggregation: Some(Aggregation {
            detail: QueryExpr::table("Flow", "F"),
            spec: GmdjSpec::new(vec![
                AggBlock::new(
                    col("F0.SourceIP").eq(col("F.SourceIP")),
                    vec![NamedAgg::sum(col("F.NumBytes"), "sumFrom")],
                ),
                AggBlock::new(
                    col("F0.SourceIP").eq(col("F.DestIP")),
                    vec![NamedAgg::sum(col("F.NumBytes"), "sumTo")],
                ),
            ]),
            having: None,
        }),
        projection: vec![
            (col("F0.SourceIP"), None),
            (col("sumFrom"), None),
            (col("sumTo"), None),
        ],
    }
}

fn main() {
    let data = NetflowData::generate(&NetflowConfig {
        hours: 24,
        flows: 40_000,
        users: 60,
        source_ips: 80,
        seed: 7,
    });
    let catalog = data.into_catalog();

    // ---- Example 2.2 ---------------------------------------------------
    let q22 = example_2_2(HOT_DEST_IPS[0]);
    println!(
        "Example 2.2 — web fraction for hours with traffic to {}",
        HOT_DEST_IPS[0]
    );
    let (rel, stats) = q22.run(&catalog, Strategy::GmdjOptimized).expect("run");
    println!(
        "  {} qualifying hours; GMDJ scanned {} detail tuples in {} partitions",
        rel.len(),
        stats.detail_scanned,
        stats.partitions
    );
    for row in rel.sorted_rows().iter().take(4) {
        println!("    hour {:>2}: web fraction {}", row[0], row[1]);
    }

    // ---- Example 2.3 / 4.1 ----------------------------------------------
    let q23 = example_2_3();
    println!("\nExample 2.3 — traffic profile across three destination subqueries");
    let basic_plan = q23.plan(&catalog, false).expect("plan");
    let optimized_plan = q23.plan(&catalog, true).expect("plan");
    println!(
        "  translated plan: {} GMDJ operators; after coalescing (Example 4.1): {}",
        basic_plan.gmdj_count(),
        optimized_plan.gmdj_count()
    );
    println!(
        "  optimized plan:\n{}",
        indent(&optimized_plan.explain(), 4)
    );

    for strat in [Strategy::GmdjBasic, Strategy::GmdjOptimized] {
        let start = std::time::Instant::now();
        let (rel, stats) = q23.run(&catalog, strat).expect("run");
        println!(
            "  {:<10} {:>8.1} ms, {:>9} detail tuples scanned, {} matching sources",
            strat.label(),
            start.elapsed().as_secs_f64() * 1e3,
            stats.detail_scanned,
            rel.len()
        );
    }
    let (rel, _) = q23.run(&catalog, Strategy::GmdjOptimized).expect("run");
    for row in rel.sorted_rows().iter().take(5) {
        println!(
            "    {:<14} sent {:>10}, received {:>10}",
            row[0], row[1], row[2]
        );
    }
}

fn indent(text: &str, by: usize) -> String {
    let pad = " ".repeat(by);
    text.lines().map(|l| format!("{pad}{l}\n")).collect()
}
