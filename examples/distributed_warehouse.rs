//! Distributed evaluation — Section 6's closing claim, demonstrated.
//!
//! The Flow fact table is fragmented across the routers that produced it
//! (round-robin here); the coordinator broadcasts the Hours base table,
//! every site evaluates the GMDJ over its local flows, and the partial
//! aggregates merge exactly. Network traffic is independent of the number
//! of flows — only base tuples and aggregate states ever cross the wire.
//!
//! ```text
//! cargo run --release --example distributed_warehouse
//! ```

use gmdj_core::distributed::DistributedWarehouse;
use gmdj_core::eval::{eval_gmdj, EvalStats, GmdjOptions};
use gmdj_core::spec::{AggBlock, GmdjSpec};
use gmdj_datagen::netflow::{NetflowConfig, NetflowData};
use gmdj_relation::agg::NamedAgg;
use gmdj_relation::expr::{col, lit};

fn main() {
    // Example 2.1's spec: hourly HTTP bytes and total bytes. (SUM-based —
    // the fraction is computed at the coordinator; AVG would have to be
    // decomposed into SUM and COUNT first.)
    let in_hour = col("F.StartTime")
        .ge(col("H.StartInterval"))
        .and(col("F.StartTime").lt(col("H.EndInterval")));
    let spec = GmdjSpec::new(vec![
        AggBlock::new(
            in_hour.clone().and(col("F.Protocol").eq(lit("HTTP"))),
            vec![NamedAgg::sum(col("F.NumBytes"), "sum1")],
        ),
        AggBlock::new(in_hour, vec![NamedAgg::sum(col("F.NumBytes"), "sum2")]),
    ]);

    println!("Hourly web-traffic fraction, evaluated at the routers themselves\n");
    println!(
        "{:>10} {:>8} {:>14} {:>16} {:>16}",
        "flows", "sites", "messages", "values shipped", "matches central?"
    );
    for &(flows, sites) in &[
        (5_000usize, 4usize),
        (50_000, 4),
        (50_000, 16),
        (200_000, 16),
    ] {
        let data = NetflowData::generate(&NetflowConfig {
            hours: 24,
            flows,
            users: 40,
            source_ips: 60,
            seed: 1,
        });
        let hours = data.hours.renamed("H");
        let detail = data.flow.renamed("F");

        let warehouse =
            DistributedWarehouse::fragment_round_robin(&detail, sites).expect("fragment");
        let (dist, _, net) = warehouse
            .eval_gmdj(&hours, &spec, &GmdjOptions::default())
            .expect("distributed evaluation");

        let mut st = EvalStats::default();
        let central = eval_gmdj(&hours, &detail, &spec, &GmdjOptions::default(), &mut st)
            .expect("central evaluation");
        let agree = dist.multiset_eq(&central);
        println!(
            "{:>10} {:>8} {:>14} {:>16} {:>16}",
            flows,
            sites,
            net.messages,
            net.total(),
            if agree { "yes" } else { "NO (bug!)" }
        );
        assert!(agree);
    }
    println!(
        "\nNote the third column: traffic depends on |Hours| × sites only.\n\
         40× more flows cross zero additional network — the detail relation\n\
         never leaves its site, which is why the paper singles the GMDJ out\n\
         for distributed data warehouses."
    );
}
